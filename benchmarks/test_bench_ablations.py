"""Ablations of the design choices DESIGN.md calls out.

* split row decoder (Section 5.3): AAP 49 ns vs 80 ns -> per-op impact;
* copy mechanism (Section 3.4): RowClone-FPM vs PSM vs DDR-interface;
* dead-store elimination of intermediate copies (Section 5.2);
* B-group sizing (Section 5.1): paper xor vs minimal-B-group xor;
* TMR ECC overhead (Section 5.4.5).
"""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.core.ecc import TmrMemory
from repro.core.microprograms import (
    BulkOp,
    compile_op,
    compile_reduction,
    compile_xor_minimal,
)
from repro.core.primitives import sequence_latency_ns
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.dram.rowclone import fpm_latency_ns, psm_latency_ns
from repro.dram.timing import ddr3_1600
from repro.energy import trace_energy_nj
from repro.perf import FIGURE9_OPS

GEO = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)


def test_bench_ablation_split_decoder(benchmark, save_table):
    """Per-operation latency with and without the split row decoder."""
    timing = ddr3_1600()
    from repro.core.addressing import AmbitAddressMap
    from repro.dram.geometry import SubarrayGeometry

    amap = AmbitAddressMap(SubarrayGeometry(rows=1024, row_bytes=8192))

    def sweep():
        rows = {}
        for op in FIGURE9_OPS:
            prog = compile_op(amap, op, 2, 0, None if op.arity == 1 else 1)
            fast = sequence_latency_ns(prog.primitives, timing, amap, True)
            slow = sequence_latency_ns(prog.primitives, timing, amap, False)
            rows[op] = (fast, slow)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation: split row decoder (Section 5.3), DDR3-1600",
        f"{'op':>6} {'split ns':>9} {'naive ns':>9} {'saving':>7}",
    ]
    for op, (fast, slow) in rows.items():
        lines.append(
            f"{op.value:>6} {fast:>9.0f} {slow:>9.0f} {slow / fast:>6.2f}X"
        )
    save_table("ablation_split_decoder", "\n".join(lines))
    for op, (fast, slow) in rows.items():
        assert fast < slow
    # A pure-AAP op improves by the full 80/49 ratio.
    fast, slow = rows[BulkOp.AND]
    assert slow / fast == pytest.approx(80.0 / 49.0)


def test_bench_ablation_copy_mechanism(benchmark, save_table):
    """FPM vs PSM vs DDR-interface copy latency for one 8 KB row."""
    timing = ddr3_1600()

    def compute():
        fpm = fpm_latency_ns(timing, split_decoder=True)
        fpm_naive = fpm_latency_ns(timing, split_decoder=False)
        psm = psm_latency_ns(timing, 8192)
        ddr = timing.activate_read_row_latency(8192) + timing.activate_read_row_latency(8192)
        return fpm, fpm_naive, psm, ddr

    fpm, fpm_naive, psm, ddr = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_table(
        "ablation_copy_mechanism",
        "Ablation: 8 KB row copy latency (Section 3.4), DDR3-1600\n"
        f"RowClone-FPM (split decoder) : {fpm:8.0f} ns\n"
        f"RowClone-FPM (naive)         : {fpm_naive:8.0f} ns  (paper: ~80 ns)\n"
        f"RowClone-PSM (inter-bank)    : {psm:8.0f} ns\n"
        f"DDR interface (read+write)   : {ddr:8.0f} ns",
    )
    assert fpm < fpm_naive < psm < ddr


def test_bench_ablation_dead_store_elimination(benchmark, save_table):
    """Section 5.2: compiling an AND-reduction with the accumulator kept
    in the designated rows vs naive per-op copies."""
    device = AmbitDevice(geometry=GEO)
    rng = np.random.default_rng(7)
    words = GEO.subarray.words_per_row
    vectors = [
        rng.integers(0, 2**63, size=words, dtype=np.uint64) for _ in range(8)
    ]
    expected = vectors[0]
    for v in vectors[1:]:
        expected = expected & v

    def run():
        results = {}
        for optimize in (True, False):
            device.reset_stats()
            for i, v in enumerate(vectors):
                device.write_row(RowLocation(0, 0, i), v)
            prog = compile_reduction(
                device.amap, BulkOp.AND, tuple(range(8)), 9, optimize=optimize
            )
            device.controller.run_program(prog, 0, 0)
            assert np.array_equal(device.read_row(RowLocation(0, 0, 9)), expected)
            results[optimize] = (
                device.busy_ns,
                trace_energy_nj(device.chip.trace, device.row_bytes),
                len(prog.primitives),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    opt, naive = results[True], results[False]
    save_table(
        "ablation_dead_store",
        "Ablation: dead-store elimination on an 8-way AND reduction\n"
        f"{'':>12} {'latency ns':>11} {'energy nJ':>10} {'primitives':>11}\n"
        f"{'optimised':>12} {opt[0]:>11.0f} {opt[1]:>10.2f} {opt[2]:>11}\n"
        f"{'naive':>12} {naive[0]:>11.0f} {naive[1]:>10.2f} {naive[2]:>11}\n"
        f"saving: {naive[0] / opt[0]:.2f}X latency, "
        f"{naive[1] / opt[1]:.2f}X energy",
    )
    assert opt[0] < naive[0] and opt[1] < naive[1]


def test_bench_ablation_bgroup_sizing(benchmark, save_table):
    """Section 5.1: the paper's 4+2-row B-group vs a minimal B-group."""
    device = AmbitDevice(geometry=GEO)
    rng = np.random.default_rng(8)
    words = GEO.subarray.words_per_row
    a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
    b = rng.integers(0, 2**63, size=words, dtype=np.uint64)

    def run():
        # Paper xor.
        device.reset_stats()
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        device.bbop_row(BulkOp.XOR, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), a ^ b)
        rich = (device.busy_ns,
                trace_energy_nj(device.chip.trace, device.row_bytes))
        # Minimal B-group xor (composed from not/and/or).
        device.reset_stats()
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        for prog in compile_xor_minimal(device.amap, 0, 1, 3):
            device.controller.run_program(prog, 0, 0)
        assert np.array_equal(device.read_row(RowLocation(0, 0, 3)), a ^ b)
        minimal = (device.busy_ns,
                   trace_energy_nj(device.chip.trace, device.row_bytes))
        return rich, minimal

    rich, minimal = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_bgroup",
        "Ablation: xor with the paper's B-group vs a minimal B-group\n"
        f"{'':>16} {'latency ns':>11} {'energy nJ':>10}\n"
        f"{'paper B-group':>16} {rich[0]:>11.0f} {rich[1]:>10.2f}\n"
        f"{'minimal B-group':>16} {minimal[0]:>11.0f} {minimal[1]:>10.2f}\n"
        f"the extra designated/DCC rows buy "
        f"{minimal[0] / rich[0]:.2f}X latency, "
        f"{minimal[1] / rich[1]:.2f}X energy on xor",
    )
    assert rich[0] < minimal[0] and rich[1] < minimal[1]


def test_bench_ablation_tmr_ecc(benchmark, save_table):
    """Section 5.4.5: TMR triples operation cost (and storage)."""
    device = AmbitDevice(geometry=GEO)
    driver = AmbitDriver(device)
    tmr = TmrMemory(device, driver)
    rng = np.random.default_rng(9)
    words = GEO.subarray.words_per_row
    a_img = rng.integers(0, 2**63, size=words, dtype=np.uint64)
    b_img = rng.integers(0, 2**63, size=words, dtype=np.uint64)

    def run():
        # Unprotected op.
        device.reset_stats()
        device.write_row(RowLocation(1, 0, 0), a_img)
        device.write_row(RowLocation(1, 0, 1), b_img)
        device.bbop_row(BulkOp.AND, RowLocation(1, 0, 2), RowLocation(1, 0, 0),
                        RowLocation(1, 0, 1))
        plain_ns = device.busy_ns
        # TMR-protected op.
        a = tmr.allocate_row()
        b = tmr.allocate_row(like=a)
        dst = tmr.allocate_row(like=a)
        tmr.write(a, a_img)
        tmr.write(b, b_img)
        device.reset_stats()
        tmr.bbop(BulkOp.AND, dst, a, b)
        protected_ns = device.busy_ns
        assert np.array_equal(tmr.read(dst).data, a_img & b_img)
        return plain_ns, protected_ns

    plain_ns, protected_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_tmr_ecc",
        "Ablation: TMR homomorphic ECC overhead (Section 5.4.5)\n"
        f"unprotected AND : {plain_ns:8.0f} ns\n"
        f"TMR AND         : {protected_ns:8.0f} ns "
        f"({protected_ns / plain_ns:.1f}X; storage overhead 3X)",
    )
    assert protected_ns == pytest.approx(3 * plain_ns, rel=1e-6)
