"""Serving-layer benchmark: the coalescing front door must earn its keep.

Runs :func:`repro.serve.bench.run_serve_bench` -- 64 concurrent clients
each awaiting 8 bulk ops over 2048-bit vectors, against two self-hosted
servers differing only in ``ServeConfig.coalesce`` -- and writes
``benchmarks/results/BENCH_serve.json``.

Bit-exactness is asserted unconditionally (both arms read every vector
back against the clients' local models; the bench raises on any lost
bit).  The speedup floor is host-tiered like ``BENCH_parallel.json``:

* >= 2 schedulable cores: coalesced dispatch must reach **2x** the
  one-op-per-batch server (the PR's acceptance floor);
* 1 core: a softer 1.3x floor still applies -- coalescing amortizes
  per-batch overhead, not core count, so it must win even here; only
  the magnitude is waived down.

``REPRO_BENCH_REQUIRE=<factor>`` forces a floor regardless of detected
cores (CI bench-smoke runners).  Whichever floor applied is recorded in
the artifact as ``speedup_tier``/``required_speedup`` so a laptop
baseline can never masquerade as a multi-core one.
"""

import json
import os

from repro.parallel.pmap import default_jobs
from repro.serve.bench import (
    ServeBenchConfig,
    format_serve_bench,
    run_serve_bench,
)

from .conftest import RESULTS_DIR

#: The acceptance floor on any host with real parallelism.
MULTI_CORE_FLOOR = 2.0
#: Coalescing is overhead amortization, not fan-out: it must win even
#: on one core, just by a gentler margin.
SINGLE_CORE_FLOOR = 1.3


def speedup_tier(cores: int):
    forced = os.environ.get("REPRO_BENCH_REQUIRE")
    if forced:
        return f"forced:{forced}", float(forced)
    if cores >= 2:
        return "2-core", MULTI_CORE_FLOOR
    return "single-core-floor", SINGLE_CORE_FLOOR


def test_bench_serve():
    config = ServeBenchConfig()
    payload = run_serve_bench(config)

    # Correctness invariants hold on any host.
    assert payload["bit_exact"] is True
    assert payload["coalesced"]["ops_ok"] == config.clients * config.ops
    assert payload["single"]["ops_ok"] == config.clients * config.ops

    # The coalesced arm must actually coalesce -- fused batches and a
    # mean batch size comfortably above one request -- while the
    # single arm must be what it claims: one request per batch.
    assert payload["coalesced"]["coalesced_batches"] >= 1
    assert payload["coalesced"]["mean_batch_requests"] >= 2.0
    assert payload["single"]["mean_batch_requests"] == 1.0

    cores = default_jobs()
    tier, required = speedup_tier(cores)
    payload["speedup_tier"] = tier
    payload["required_speedup"] = required

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n{format_serve_bench(payload)}\n")

    assert payload["speedup"] >= required, (
        f"coalesced dispatch reached only {payload['speedup']:.2f}x the "
        f"one-op-per-batch server on a {cores}-core host (floor "
        f"{required}x, tier {tier}); the front door is not paying for "
        f"itself"
    )
