"""Benchmark support: every experiment writes its reproduced table to
``benchmarks/results/<name>.txt`` (in addition to printing it), so the
paper-versus-measured comparison survives pytest's output capturing."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_table():
    """Persist (and print) an experiment's formatted table."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
