"""Table 3: DRAM + channel energy of bulk bitwise operations.

Executes every operation class on the functional device, folds the real
command trace into energy, and compares nJ/KB and reduction factors
against the paper's 25.1X - 59.5X band.
"""

import pytest

from repro.energy import TABLE3_PAPER, format_table3, table3_experiment


def test_bench_table3_energy(benchmark, save_table):
    rows = benchmark.pedantic(table3_experiment, rounds=1, iterations=1)
    save_table("table3_energy", format_table3(rows))

    for op_class, (paper_ddr, paper_ambit) in TABLE3_PAPER.items():
        measured = rows[op_class]
        assert measured.ddr3_nj_per_kb == pytest.approx(paper_ddr, rel=0.10)
        assert measured.ambit_nj_per_kb == pytest.approx(paper_ambit, rel=0.10)

    # Section 7: Ambit reduces energy 25.1X - 59.5X vs the DDR3 interface.
    reductions = [r.reduction for r in rows.values()]
    assert min(reductions) == pytest.approx(25.1, rel=0.15)
    assert max(reductions) == pytest.approx(59.5, rel=0.15)
