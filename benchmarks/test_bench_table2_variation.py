"""Table 2: TRA failure rate under process variation (Section 6).

Regenerates the Monte-Carlo sweep (100,000 trials per level, like the
paper) and the adversarial-corner tolerance, and checks the measured
curve sits in the paper's regime.
"""

import pytest

from repro.circuit import (
    TABLE2_PAPER_FAILURES,
    format_table2,
    max_tolerable_variation,
    table2_experiment,
)

TRIALS = 100_000


def test_bench_table2_monte_carlo(benchmark, save_table):
    results = benchmark.pedantic(
        table2_experiment,
        kwargs={"trials": TRIALS, "seed": 42},
        rounds=1,
        iterations=1,
    )
    save_table("table2_variation", format_table2(results))

    # Zero failures through +/-5 % (exactly as the paper reports).
    assert results[0.0].failures == 0
    assert results[0.05].failures == 0
    # Sub-percent at +/-10 %, tens of percent at +/-25 %.
    assert results[0.10].failure_percent < 1.0
    assert 18.0 <= results[0.25].failure_percent <= 35.0
    # Monotone growth.
    curve = [results[l].failure_rate for l in (0.10, 0.15, 0.20, 0.25)]
    assert all(a < b for a, b in zip(curve, curve[1:]))
    # Each nonzero point within ~2.5x of the paper's value.
    for level, paper in TABLE2_PAPER_FAILURES.items():
        if paper > 0:
            measured = results[level].failure_percent
            assert paper / 2.5 <= measured <= paper * 2.5, (level, measured)


def test_bench_worst_case_corner(benchmark, save_table):
    tolerance = benchmark(max_tolerable_variation)
    save_table(
        "table2_corner",
        "Adversarial corner analysis (Section 6)\n"
        f"max tolerable variation : +/-{tolerance * 100:.2f}%\n"
        f"paper                   : ~ +/-6%",
    )
    assert 0.05 <= tolerance <= 0.07
