"""Figure 12: set operations -- RB-tree vs Bitset vs Ambit.

The paper's workload: m = 15 input sets over the domain 1..512K, with
the number of elements e per set swept from 4 to 1024.  Times are
normalised to the red-black tree, as in the figure.  Findings to
reproduce: Ambit beats Bitset everywhere (paper: ~3X); RB-trees win
only for very small sets; from e >= 64 Ambit wins overall (paper: 3X
average over RB-tree).
"""

import numpy as np
import pytest

from repro.apps.sets import (
    AmbitSetOps,
    BitsetSetOps,
    RBTreeSetOps,
    reference_set_op,
)
from repro.sim.cpu import CpuModel
from repro.workloads import random_sets

DOMAIN = 512 * 1024
M = 15
ELEMENTS = (4, 16, 64, 256, 1024)
OPS = ("union", "intersection", "difference")


def _sweep():
    cpu = CpuModel()
    impls = {
        "rbtree": RBTreeSetOps(cpu),
        "bitset": BitsetSetOps(DOMAIN, cpu),
        "ambit": AmbitSetOps(DOMAIN, cpu),
    }
    table = {}
    for e in ELEMENTS:
        sets = random_sets(M, e, DOMAIN, np.random.default_rng(e))
        for op in OPS:
            ref = reference_set_op(sets, op)
            times = {}
            for name, impl in impls.items():
                result = getattr(impl, op)(sets)
                assert result.elements == ref, (name, op)
                times[name] = result.elapsed_ns
            table[(op, e)] = times
    return table


def _format(table):
    lines = [
        "Figure 12: set operations, execution time normalised to RB-tree",
        f"{'op':>14} {'e':>6} {'rbtree':>8} {'bitset':>8} {'ambit':>8}"
        f"   (absolute rbtree us)",
    ]
    for (op, e), times in table.items():
        rb = times["rbtree"]
        lines.append(
            f"{op:>14} {e:>6} {1.0:>8.2f} {times['bitset'] / rb:>8.2f} "
            f"{times['ambit'] / rb:>8.2f}   ({rb / 1e3:10.1f})"
        )
    return "\n".join(lines)


def test_bench_fig12_sets(benchmark, save_table):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_table("fig12_sets", _format(table))

    # Ambit beats Bitset for every (op, e) -- paper: ~3X on average.
    ratios = [
        times["bitset"] / times["ambit"] for times in table.values()
    ]
    assert min(ratios) > 1.5
    assert 2.0 <= float(np.mean(ratios)) <= 12.0

    # RB-trees win for tiny sets (e = 4) on intersection/difference...
    for op in ("intersection", "difference"):
        assert table[(op, 4)]["rbtree"] < table[(op, 4)]["ambit"]
    # ...but for larger sets Ambit wins union and difference outright
    # and wins on average across the three operations (the paper's
    # "Ambit significantly outperforms RB-Tree, 3X on average").
    for e in (256, 1024):
        for op in ("union", "difference"):
            assert table[(op, e)]["ambit"] < table[(op, e)]["rbtree"], (op, e)
    mean_advantage = np.mean(
        [table[(op, 1024)]["rbtree"] / table[(op, 1024)]["ambit"] for op in OPS]
    )
    assert mean_advantage > 3.0

    # Bitvector cost is element-count independent; RB-tree cost grows.
    assert table[("union", 4)]["bitset"] == pytest.approx(
        table[("union", 1024)]["bitset"], rel=0.05
    )
    assert table[("union", 1024)]["rbtree"] > 10 * table[("union", 4)]["rbtree"]
