"""Ablations: system integration style and traffic interleaving.

* Section 5.4: memory-bus Ambit vs PCIe-device Ambit across data
  residency scenarios.
* Section 5.5.2: foreground request latency while Ambit jobs stream in
  the background.
"""

import pytest

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import BulkOp, compile_op
from repro.core.scheduler import AmbitJob, InterleavingController
from repro.dram.controller import MemRequest, RequestType
from repro.dram.geometry import SubarrayGeometry
from repro.dram.timing import ddr3_1600
from repro.perf.integration import integration_comparison

AMAP = AmbitAddressMap(SubarrayGeometry(rows=1024, row_bytes=8192))
ROW = 8192
OP_NS = 196.0


def test_bench_ablation_integration(benchmark, save_table):
    scenarios = {
        "cold operands, host reads result": dict(
            operands_resident=False, result_consumed_by_host=True
        ),
        "cold operands, result stays": dict(
            operands_resident=False, result_consumed_by_host=False
        ),
        "resident operands, result stays": dict(
            operands_resident=True, result_consumed_by_host=False
        ),
    }

    def sweep():
        return {
            name: integration_comparison(
                operand_bytes=3 * ROW,
                result_bytes=ROW,
                operations=1000,
                op_latency_ns=OP_NS,
                **kwargs,
            )
            for name, kwargs in scenarios.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation: memory-bus vs PCIe-device integration (Section 5.4)",
        "1000 bulk ANDs on 8 KB rows",
        f"{'scenario':>34} {'bus ms':>8} {'device ms':>10} {'penalty':>8}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:>34} {r['memory_bus_ns'] / 1e6:>8.3f} "
            f"{r['device_ns'] / 1e6:>10.3f} {r['device_penalty']:>7.1f}X"
        )
    save_table("ablation_integration", "\n".join(lines))

    penalties = [r["device_penalty"] for r in results.values()]
    assert min(penalties) > 3.0  # the bus design wins in every scenario
    # Data copies are the dominant cost: the cold case is much worse.
    assert (
        results["cold operands, host reads result"]["device_penalty"]
        > 2 * results["resident operands, result stays"]["device_penalty"]
    )


def test_bench_ablation_interleaving(benchmark, save_table):
    timing = ddr3_1600()

    def run():
        rows = {}
        for jobs in (0, 2, 8):
            ctrl = InterleavingController(timing, AMAP, banks=1)
            for j in range(jobs):
                prog = compile_op(AMAP, BulkOp.AND, 2, 0, 1)
                ctrl.enqueue_job(AmbitJob(prog, bank=0, arrival_ns=0.0))
            for i in range(8):
                ctrl.enqueue_request(
                    MemRequest(
                        RequestType.READ, bank=0, row=i, arrival_ns=i * 100.0
                    )
                )
            stats = ctrl.run()
            rows[jobs] = (stats.mean_request_latency, stats.mean_job_latency)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: foreground latency under Ambit load (Section 5.5.2)",
        "8 reads arriving every 100 ns on one bank",
        f"{'ambit jobs':>11} {'mean read ns':>13} {'mean job ns':>12}",
    ]
    for jobs, (req_ns, job_ns) in rows.items():
        job_s = f"{job_ns:>12.0f}" if jobs else f"{'--':>12}"
        lines.append(f"{jobs:>11} {req_ns:>13.0f} {job_s}")
    save_table("ablation_interleaving", "\n".join(lines))

    # Interference exists but is bounded: even 8 queued jobs add less
    # than two AAP latencies to the average read.
    assert rows[2][0] > rows[0][0]
    assert rows[8][0] < rows[0][0] + 2 * timing.aap_latency(True)
