"""Batch-engine speedup benchmark: thresholds + committed baseline.

The measurement itself lives in :mod:`repro.perf.enginebench` (shared
with ``repro bench --check``); this test runs it, asserts the speedup
thresholds, prints the table, and writes
``benchmarks/results/BENCH_engine.json`` -- the committed baseline the
regression gate compares future runs against.
"""

import json

import pytest

from repro.perf.enginebench import format_engine_bench, run_engine_bench

from .conftest import RESULTS_DIR


def test_bench_engine_speedup():
    payload = run_engine_bench(rows_per_bank=40, row_bytes=1024, repeats=3)
    results = payload["results"]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    print("\n" + format_engine_bench(payload) + "\n")

    for r in results:
        assert r["speedup"] >= 1.0, (
            f"batched path slower than per-row at {r['banks']} banks: "
            f"{r['speedup']:.2f}x"
        )
    at8 = next(r for r in results if r["banks"] == 8)
    assert at8["speedup"] >= 3.0, (
        f"batched path must be >= 3x at 8 banks; got {at8['speedup']:.2f}x"
    )
    assert at8["parallelism"] == pytest.approx(8.0)
