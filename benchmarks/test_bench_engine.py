"""Batch-engine speedup benchmark: wall-clock rows/s, slow vs batched.

The per-row path walks ``compile -> primitives -> commands -> subarray``
in pure Python for every row; the batch engine compiles each distinct
plan once, fuses the functional work of a (bank, subarray) group into
one numpy operation, and extends the trace from cached command
schedules.  This benchmark measures real wall-clock time for both paths
on the Figure-9-style workload at 1/2/4/8 banks and writes
``benchmarks/results/BENCH_engine.json``:

* ``slow_rows_per_s`` / ``batched_rows_per_s`` -- best-of-3 wall-clock
  row throughput of each path,
* ``speedup`` -- their ratio (asserted >= 1 everywhere, >= 3 at 8
  banks),
* ``parallelism`` -- the engine's serialized-vs-interleaved makespan
  ratio (the modelled bank-level overlap, distinct from wall-clock).

Both paths are also pinned bit-exact and accounting-exact against each
other here, so the speedup cannot come from skipped work.
"""

import json
import time

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.perf.throughput import throughput_rows

from .conftest import RESULTS_DIR

BANK_COUNTS = (1, 2, 4, 8)
ROWS_PER_BANK = 40
ROW_BYTES = 1024
OP = BulkOp.AND
REPEATS = 3


def _geometry(banks):
    return DramGeometry(
        banks=banks,
        subarrays_per_bank=2,
        subarray=SubarrayGeometry(rows=64, row_bytes=ROW_BYTES),
    )


def _run_slow(device, op, dst, src1, src2):
    for i in range(len(dst)):
        device.bbop_row(op, dst[i], src1[i], src2[i])


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_engine_speedup():
    results = []
    for banks in BANK_COUNTS:
        slow = AmbitDevice(geometry=_geometry(banks))
        fast = AmbitDevice(geometry=_geometry(banks))
        dst, src1, src2 = throughput_rows(slow, OP, ROWS_PER_BANK)
        throughput_rows(fast, OP, ROWS_PER_BANK)  # same seed, same data
        rows = len(dst)

        slow.reset_stats()
        slow_s = _best_of(
            REPEATS, lambda: _run_slow(slow, OP, dst, src1, src2)
        )
        slow.reset_stats()
        _run_slow(slow, OP, dst, src1, src2)

        fast.reset_stats()
        batched_s = _best_of(
            REPEATS, lambda: fast.engine.run_rows(OP, dst, src1, src2)
        )
        fast.reset_stats()
        report = fast.engine.run_rows(OP, dst, src1, src2)

        # The speedup is wall-clock only: results and accounting match.
        assert report.fused_rows == rows
        for loc in dst:
            np.testing.assert_array_equal(
                fast.read_row(loc), slow.read_row(loc)
            )
        assert fast.elapsed_ns == pytest.approx(slow.elapsed_ns)
        assert fast.busy_ns == pytest.approx(slow.busy_ns)

        results.append(
            {
                "banks": banks,
                "rows": rows,
                "slow_rows_per_s": rows / slow_s,
                "batched_rows_per_s": rows / batched_s,
                "speedup": slow_s / batched_s,
                "parallelism": report.parallelism.parallelism,
            }
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "op": OP.value,
        "rows_per_bank": ROWS_PER_BANK,
        "row_bytes": ROW_BYTES,
        "results": results,
    }
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"{'banks':>6} {'rows':>6} {'slow rows/s':>14} "
        f"{'batched rows/s':>14} {'speedup':>9} {'parallelism':>12}"
    ]
    for r in results:
        lines.append(
            f"{r['banks']:>6} {r['rows']:>6} {r['slow_rows_per_s']:>14.0f} "
            f"{r['batched_rows_per_s']:>14.0f} {r['speedup']:>8.1f}x "
            f"{r['parallelism']:>11.2f}x"
        )
    print("\n" + "\n".join(lines) + "\n")

    for r in results:
        assert r["speedup"] >= 1.0, (
            f"batched path slower than per-row at {r['banks']} banks: "
            f"{r['speedup']:.2f}x"
        )
    at8 = next(r for r in results if r["banks"] == 8)
    assert at8["speedup"] >= 3.0, (
        f"batched path must be >= 3x at 8 banks; got {at8['speedup']:.2f}x"
    )
    assert at8["parallelism"] == pytest.approx(8.0)
