"""Multi-process simulation benchmark: serial vs sharded wall-clock.

Runs :func:`repro.parallel.bench.run_parallel_bench` with 8 worker
processes -- a parallel Monte Carlo arm (1M TRA trials at +/-15 %
variation, 32 seed-spawned chunks) and a sharded bulk-op arm (8 banks x
40 rows of 8 KB through :class:`~repro.parallel.device.ShardedDevice`)
-- and writes ``benchmarks/results/BENCH_parallel.json``.

Correctness is asserted unconditionally: the parallel Monte Carlo must
return bit-identical failure counts to ``jobs=1`` and the sharded device
must be bit-exact against the serial engine (both checks raise inside
the bench if violated).  The *speedup* assertion is tiered by what the
host can physically deliver, per ``docs/SCALING.md``:

* >= 8 schedulable cores: best arm must reach 3x,
* >= 4 cores: 1.5x,
* fewer (CI shared runners, laptops in powersave): recorded, not
  asserted -- a single-core host cannot exhibit multi-core speedup and
  failing there would only train people to ignore the benchmark.

``REPRO_BENCH_REQUIRE=<factor>`` forces a floor regardless of the
detected core count (used by the CI bench-smoke job on runners known to
have cores).
"""

import json
import os

from repro.parallel.bench import (
    ParallelBenchConfig,
    format_parallel_bench,
    run_parallel_bench,
)
from repro.parallel.pmap import default_jobs

from .conftest import RESULTS_DIR

JOBS = 8


def _required_speedup(cores: int) -> float:
    forced = os.environ.get("REPRO_BENCH_REQUIRE")
    if forced:
        return float(forced)
    if cores >= 8:
        return 3.0
    if cores >= 4:
        return 1.5
    return 0.0


def test_bench_parallel():
    config = ParallelBenchConfig(jobs=JOBS)
    payload = run_parallel_bench(config)

    # Correctness invariants hold on any host (the bench raises on
    # violation; the flags are recorded for the JSON artifact too).
    assert payload["montecarlo"]["deterministic"] is True
    assert payload["bulk_ops"]["bit_exact"] is True
    assert payload["bulk_ops"]["shards"] == min(JOBS, config.banks)

    cores = default_jobs()
    required = _required_speedup(cores)
    payload["required_speedup"] = required

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n{format_parallel_bench(payload)}\n")

    if required:
        assert payload["best_speedup"] >= required, (
            f"best speedup {payload['best_speedup']:.2f}x below the "
            f"{required}x floor for a {cores}-core host "
            f"(montecarlo {payload['montecarlo']['speedup']:.2f}x, "
            f"bulk ops {payload['bulk_ops']['speedup']:.2f}x)"
        )
