"""Multi-process simulation benchmark: serial vs sharded wall-clock.

Runs :func:`repro.parallel.bench.run_parallel_bench` with 8 worker
processes -- a parallel Monte Carlo arm (8M TRA trials at +/-15 %
variation, 32 seed-spawned chunks) and a sharded bulk-op arm (8 banks x
8 rows of 128 KiB through :class:`~repro.parallel.device.ShardedDevice`,
pool and plan caches warmed before timing) -- and writes
``benchmarks/results/BENCH_parallel.json``.

Correctness is asserted unconditionally: the parallel Monte Carlo must
return bit-identical failure counts to ``jobs=1`` and the sharded device
must be bit-exact against the serial engine (both checks raise inside
the bench if violated).  The *speedup* assertions are tiered by what
the host can physically deliver, per ``docs/SCALING.md``:

* >= 8 schedulable cores: best arm must reach 3x,
* >= 4 cores: 1.5x,
* >= 2 cores: 1.05x best arm, and the bulk-op arm alone must beat the
  serial engine (speedup > 1.0) -- the resident-plan/zero-copy dispatch
  path earns its keep on any multi-core host or it is a regression,
* 1 core: recorded, not asserted -- a single-core host cannot exhibit
  multi-core speedup and failing there would only train people to
  ignore the benchmark.

Whatever applied is written into the JSON artifact as ``speedup_tier``
(e.g. ``"8-core"``, ``"waived-single-core"``, ``"forced:1.5"``) next to
``required_speedup``, so a baseline produced on a laptop can never be
mistaken for one that actually cleared a floor.

``REPRO_BENCH_REQUIRE=<factor>`` forces a floor regardless of the
detected core count (used by the CI bench-smoke job on runners known to
have cores).
"""

import json
import os

from repro.parallel.bench import (
    ParallelBenchConfig,
    format_parallel_bench,
    run_parallel_bench,
)
from repro.parallel.pmap import default_jobs

from .conftest import RESULTS_DIR

JOBS = 8

#: (min schedulable cores, best-arm speedup floor), first match wins.
SPEEDUP_TIERS = ((8, 3.0), (4, 1.5), (2, 1.05))


def speedup_tier(cores: int):
    """``(tier name, best-arm floor, bulk-arm floor)`` for this host."""
    forced = os.environ.get("REPRO_BENCH_REQUIRE")
    if forced:
        return f"forced:{forced}", float(forced), 1.0
    for min_cores, floor in SPEEDUP_TIERS:
        if cores >= min_cores:
            return f"{min_cores}-core", floor, 1.0
    return "waived-single-core", 0.0, 0.0


def test_bench_parallel():
    config = ParallelBenchConfig(jobs=JOBS)
    payload = run_parallel_bench(config)

    # Correctness invariants hold on any host (the bench raises on
    # violation; the flags are recorded for the JSON artifact too).
    assert payload["montecarlo"]["deterministic"] is True
    assert payload["bulk_ops"]["bit_exact"] is True
    assert payload["bulk_ops"]["shards"] == min(JOBS, config.banks)

    # The dispatch budget must hold in the artifact too: after warm-up
    # a shard job is an O(1) message, never a row list.
    io = payload["bulk_ops"]["dispatch"]["io"]
    assert io["submitted_jobs"] > 0
    assert io["max_submission_bytes"] < 1024

    # The Monte Carlo arm either wins or says why not: the tuner's
    # worker-count decision lands in the payload as a tier, and a
    # declined fan-out (single core, dispatch-bound) must carry its
    # reason -- never a silent sub-1x "speedup".
    mc = payload["montecarlo"]
    assert mc["speedup_tier"] in (
        "tuned", "waived-single-core", "waived-dispatch-bound"
    )
    if mc["speedup_tier"] == "tuned":
        assert mc["jobs_effective"] >= 2
        assert mc["speedup"] > 1.0, (
            f"tuned Monte Carlo fan-out at {mc['jobs_effective']} workers "
            f"lost to the in-process run ({mc['speedup']:.2f}x); the "
            f"cost model mispredicted"
        )
    else:
        assert mc["jobs_effective"] == 1
        assert mc["waiver_reason"]

    cores = default_jobs()
    tier, required, bulk_required = speedup_tier(cores)
    payload["required_speedup"] = required
    payload["speedup_tier"] = tier

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n{format_parallel_bench(payload)}\n")

    if required:
        assert payload["best_speedup"] >= required, (
            f"best speedup {payload['best_speedup']:.2f}x below the "
            f"{required}x floor of tier {tier} on a {cores}-core host "
            f"(montecarlo {payload['montecarlo']['speedup']:.2f}x, "
            f"bulk ops {payload['bulk_ops']['speedup']:.2f}x)"
        )
    if bulk_required:
        assert payload["bulk_ops"]["speedup"] > bulk_required, (
            f"bulk-op speedup {payload['bulk_ops']['speedup']:.2f}x does "
            f"not beat the serial engine on a {cores}-core host; the "
            f"sharded dispatch path has regressed"
        )
