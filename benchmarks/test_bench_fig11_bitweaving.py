"""Figure 11: BitWeaving column scans, baseline vs Ambit.

Sweeps bits-per-value b in {4..32} and row count r in {1M..8M},
verifying every count against numpy and reporting the speedup matrix.
The paper's findings to reproduce: 1.8X - 11.8X (avg 7X), speedup grows
with b, and jumps where the working set stops fitting in the on-chip
cache.
"""

import numpy as np
import pytest

from repro.apps.bitweaving import (
    BitWeavingColumn,
    scan_range_ambit,
    scan_range_baseline,
)
from repro.sim import AmbitContext, CpuContext
from repro.workloads import column_values

BITS = (4, 8, 12, 16, 24, 32)
ROWS = (1_000_000, 2_000_000, 4_000_000, 8_000_000)


def _sweep():
    rng = np.random.default_rng(20)
    table = {}
    for r in ROWS:
        for b in BITS:
            values = column_values(r, b, rng)
            column = BitWeavingColumn.encode(values, b)
            c1, c2 = (1 << b) // 4, (3 << b) // 4
            base_ctx, ambit_ctx = CpuContext(), AmbitContext()
            _, count_base = scan_range_baseline(base_ctx, column, c1, c2)
            _, count_ambit = scan_range_ambit(ambit_ctx, column, c1, c2)
            expected = int(((values >= c1) & (values <= c2)).sum())
            assert count_base == count_ambit == expected
            table[(b, r)] = base_ctx.elapsed_ns / ambit_ctx.elapsed_ns
    return table


def _format(table):
    lines = [
        "Figure 11: BitWeaving scan speedup (Ambit over SIMD baseline)",
        f"{'rows / bits':>12}" + "".join(f"{b:>8}" for b in BITS),
    ]
    for r in ROWS:
        row = f"{r // 1_000_000:>10}m  "
        row += "".join(f"{table[(b, r)]:>7.1f}X" for b in BITS)
        lines.append(row)
    speedups = list(table.values())
    lines.append(
        f"range: {min(speedups):.1f}X - {max(speedups):.1f}X, "
        f"mean {np.mean(speedups):.1f}X   (paper: 1.8X - 11.8X, avg 7.0X)"
    )
    return "\n".join(lines)


def test_bench_fig11_bitweaving(benchmark, save_table):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_table("fig11_bitweaving", _format(table))

    speedups = list(table.values())
    # The paper's range, with model tolerance.
    assert 1.0 <= min(speedups) <= 2.5
    assert 7.0 <= max(speedups) <= 14.0
    assert 4.0 <= float(np.mean(speedups)) <= 10.0
    # Speedup grows with bits per value at fixed row count.
    for r in ROWS:
        assert table[(4, r)] < table[(16, r)] < table[(32, r)]
    # Cache-spill jump: for b=8, 4M rows (4 MB) beats 1M rows (1 MB,
    # L2-resident baseline) by a clear margin.
    assert table[(8, 4_000_000)] > 1.5 * table[(8, 1_000_000)]
