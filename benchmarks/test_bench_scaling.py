"""Scaling study: Ambit throughput vs internal parallelism.

Section 1: "the performance of Ambit scales linearly with the maximum
internal bandwidth of DRAM (i.e., row buffer size) and the memory-level
parallelism available inside DRAM (i.e., number of banks or
subarrays)."  This benchmark sweeps all three axes.
"""

import pytest

from repro.core.microprograms import BulkOp
from repro.dram.timing import ddr3_1600
from repro.perf.systems import AmbitSystem

BANKS = (1, 2, 4, 8, 16)
ROW_BYTES = (2048, 8192, 32768)


def _sweep():
    timing = ddr3_1600()
    table = {}
    for banks in BANKS:
        for row_bytes in ROW_BYTES:
            for salp in (1, 4):
                system = AmbitSystem(
                    "sweep", timing=timing, banks=banks,
                    row_bytes=row_bytes, salp_subarrays=salp,
                )
                table[(banks, row_bytes, salp)] = system.throughput_gops(
                    BulkOp.AND
                )
    return table


def test_bench_scaling(benchmark, save_table):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Scaling: bulk AND throughput (GOps/s) vs banks / row size / SALP",
        f"{'banks':>6} {'row KB':>7} {'SALP=1':>9} {'SALP=4':>9}",
    ]
    for banks in BANKS:
        for row_bytes in ROW_BYTES:
            lines.append(
                f"{banks:>6} {row_bytes // 1024:>7} "
                f"{table[(banks, row_bytes, 1)]:>9.1f} "
                f"{table[(banks, row_bytes, 4)]:>9.1f}"
            )
    save_table("scaling", "\n".join(lines))

    # Linear in banks.
    for row_bytes in ROW_BYTES:
        assert table[(16, row_bytes, 1)] == pytest.approx(
            16 * table[(1, row_bytes, 1)]
        )
    # Linear in row-buffer width.
    for banks in BANKS:
        assert table[(banks, 32768, 1)] == pytest.approx(
            16 * table[(banks, 2048, 1)]
        )
    # Linear in SALP subarrays.
    assert table[(8, 8192, 4)] == pytest.approx(4 * table[(8, 8192, 1)])
    # The paper's default point: 8 banks x 8 KB rows = ~334 GOps/s.
    assert table[(8, 8192, 1)] == pytest.approx(334.4, rel=0.01)
