"""Tracer-overhead smoke benchmark: tracing must stay affordable.

An attached :class:`~repro.obs.tracer.Tracer` turns every bus command
and primitive into a :class:`~repro.obs.events.TraceEvent` fanned out
to the sinks -- pure Python work on the hottest path.  This benchmark
pins the cost: a per-row bulk-op workload with a tracer attached (ring
buffer + counter sinks, the default-attachment configuration) must
stay under ``MAX_SLOWDOWN`` times the untraced run.  Measured slowdown
on the reference host is ~2x; the bound is 4x so CI noise cannot trip
it while a pathological regression (an accidental O(events^2) sink,
say) still does.
"""

import json
import time

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.obs.sinks import CounterSink, RingBufferSink
from repro.obs.tracer import Tracer

from .conftest import RESULTS_DIR

#: Documented bound on the attached-tracer slowdown of the per-row path.
MAX_SLOWDOWN = 4.0

ROWS_PER_BANK = 10
REPEATS = 5

GEO = DramGeometry(
    banks=2,
    subarrays_per_bank=2,
    subarray=SubarrayGeometry(rows=64, row_bytes=1024),
)


def _build():
    device = AmbitDevice(geometry=GEO)
    rng = np.random.default_rng(0)
    words = GEO.subarray.words_per_row
    rows = []
    for bank in range(GEO.banks):
        for j in range(ROWS_PER_BANK):
            dst = RowLocation(bank, 0, 3 * j)
            a = RowLocation(bank, 0, 3 * j + 1)
            b = RowLocation(bank, 0, 3 * j + 2)
            device.write_row(
                a, rng.integers(0, 2**63, size=words, dtype=np.uint64)
            )
            device.write_row(
                b, rng.integers(0, 2**63, size=words, dtype=np.uint64)
            )
            rows.append((dst, a, b))
    return device, rows


def _run(device, rows):
    for dst, a, b in rows:
        device.bbop_row(BulkOp.XOR, dst, a, b)


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_tracer_overhead():
    plain_device, plain_rows = _build()
    plain_s = _best_of(REPEATS, lambda: _run(plain_device, plain_rows))

    traced_device, traced_rows = _build()
    ring, counters = RingBufferSink(capacity=4096), CounterSink()
    traced_device.attach_tracer(Tracer(
        sinks=(ring, counters),
        timing=traced_device.timing,
        row_bytes=traced_device.row_bytes,
    ))
    traced_s = _best_of(REPEATS, lambda: _run(traced_device, traced_rows))

    # The traced run did real tracing work.
    assert ring.events, "tracer emitted no events"
    assert counters.counters.commands > 0

    slowdown = traced_s / plain_s
    payload = {
        "bench": "tracer_overhead",
        "rows": len(plain_rows) * REPEATS,
        "plain_s": plain_s,
        "traced_s": traced_s,
        "slowdown": slowdown,
        "max_slowdown": MAX_SLOWDOWN,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_tracer_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\ntracer overhead: plain {plain_s * 1e3:.2f} ms, "
          f"traced {traced_s * 1e3:.2f} ms -> {slowdown:.2f}x "
          f"(bound {MAX_SLOWDOWN:.1f}x)\n")

    assert slowdown < MAX_SLOWDOWN, (
        f"attached tracer slows the per-row path {slowdown:.2f}x; "
        f"documented bound is {MAX_SLOWDOWN:.1f}x"
    )
