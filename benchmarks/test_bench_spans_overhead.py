"""Span-overhead benchmark: request tracing must stay affordable.

Runs :func:`repro.serve.bench.run_spans_overhead_bench` -- the same
seeded client swarm against two self-hosted coalescing servers that
differ only in ``ServeConfig.trace`` -- and writes
``benchmarks/results/BENCH_spans_overhead.json``.

Request spans ride the serving hot path (checkpoint stamps in the
coalescer and wave runner, breakdown arithmetic and ring insertion per
response), so the tax is measured end to end, at the socket, exactly
where a client would feel it.  Bit-exactness is asserted on both arms,
and the throughput loss must stay under ``MAX_OVERHEAD``.  The gate is
an *absolute* ceiling, not a baseline ratio: the claim is "tracing is
cheap", and a regression that doubles a cheap cost could hide inside a
relative tolerance forever.
"""

import json

from repro.serve.bench import (
    ServeBenchConfig,
    format_spans_overhead_bench,
    run_spans_overhead_bench,
)

from .conftest import RESULTS_DIR

#: Documented ceiling on the traced arm's throughput loss.
MAX_OVERHEAD = 0.10


def test_bench_spans_overhead():
    config = ServeBenchConfig()
    payload = run_spans_overhead_bench(config)

    # Correctness invariants hold on any host.
    assert payload["bit_exact"] is True
    assert payload["traced"]["ops_ok"] == config.clients * config.ops
    assert payload["untraced"]["ops_ok"] == config.clients * config.ops

    payload["max_overhead"] = MAX_OVERHEAD
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_spans_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n{format_spans_overhead_bench(payload)}\n")

    assert payload["overhead"] < MAX_OVERHEAD, (
        f"request tracing costs {payload['overhead'] * 100:.1f}% of serve "
        f"throughput (ceiling {MAX_OVERHEAD * 100:.0f}%); spans are "
        f"supposed to be cheap enough to leave on"
    )
