"""Figure 9: bulk bitwise throughput across the five systems.

Computes the full throughput matrix (Skylake, GTX 745, HMC 2.0, Ambit,
Ambit-3D x seven operations), checks every headline ratio from
Section 7, and cross-validates the analytical Ambit model against the
functional command-level device.
"""

import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import small_test_geometry
from repro.perf import (
    AmbitSystem,
    figure9_experiment,
    format_figure9,
    measure_ambit_functional,
)


def test_bench_fig9_throughput(benchmark, save_table):
    result = benchmark.pedantic(figure9_experiment, rounds=1, iterations=1)
    save_table("fig9_throughput", format_figure9(result))

    # Strict ordering of the five systems.
    means = [
        result.mean(n)
        for n in ("Skylake", "GTX745", "HMC 2.0", "Ambit", "Ambit-3D")
    ]
    assert all(a < b for a, b in zip(means, means[1:]))

    # Headline ratios (paper values / accepted band).
    assert result.speedup("HMC 2.0", "Skylake") == pytest.approx(18.5, rel=0.05)
    assert result.speedup("HMC 2.0", "GTX745") == pytest.approx(13.1, rel=0.05)
    assert 35.0 <= result.speedup("Ambit", "Skylake") <= 60.0       # paper 44.9X
    assert 28.0 <= result.speedup("Ambit", "GTX745") <= 45.0        # paper 32X
    assert 2.0 <= result.speedup("Ambit", "HMC 2.0") <= 3.5         # paper 2.4X
    assert 8.0 <= result.speedup("Ambit-3D", "HMC 2.0") <= 13.0     # paper 9.7X

    # Per-op structure: not is the fastest class on every system.
    for name in result.systems:
        t = result.throughput[name]
        assert t[BulkOp.NOT] >= max(t[op] for op in t)


def test_bench_fig9_functional_cross_check(benchmark, save_table):
    """The command-level device reproduces the analytical throughput."""
    geo = small_test_geometry(rows=24, row_bytes=8192, banks=8, subarrays_per_bank=1)
    device = AmbitDevice(geometry=geo)
    model = AmbitSystem("check", timing=device.timing, banks=8, row_bytes=8192)

    measured = benchmark.pedantic(
        measure_ambit_functional,
        args=(device, BulkOp.AND),
        kwargs={"rows_per_bank": 4},
        rounds=1,
        iterations=1,
    )
    analytical = model.throughput_gops(BulkOp.AND)
    save_table(
        "fig9_cross_check",
        "Functional-device cross-check (bulk AND, 8 banks, 8 KB rows)\n"
        f"functional model : {measured:8.1f} GOps/s\n"
        f"analytical model : {analytical:8.1f} GOps/s",
    )
    assert measured == pytest.approx(analytical, rel=1e-6)
