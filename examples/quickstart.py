#!/usr/bin/env python
"""Quickstart: bulk bitwise operations inside DRAM.

Allocates two bitvectors through the subarray-aware driver, combines
them with in-DRAM AND/OR/XOR/NOT (every operation really executes as
ACTIVATE/PRECHARGE command sequences against the functional Ambit
device, including triple-row activations and dual-contact-cell NOTs),
verifies the results against numpy, and prints the device-side timing
and energy accounting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AmbitBitSystem, DramGeometry, SubarrayGeometry
from repro.energy import trace_energy_nj


def main() -> None:
    # A small device keeps the functional simulation snappy; the
    # mechanism is identical at any geometry.
    system = AmbitBitSystem(
        geometry=DramGeometry(
            banks=4,
            subarrays_per_bank=4,
            subarray=SubarrayGeometry(rows=64, row_bytes=1024),
        )
    )
    rng = np.random.default_rng(42)
    nbits = 100_000

    bits_a = rng.random(nbits) < 0.5
    bits_b = rng.random(nbits) < 0.5
    a = system.from_bits(bits_a)
    b = system.from_bits(bits_b, like=a)  # co-located => pure RowClone-FPM

    print(f"allocated two {nbits}-bit vectors across "
          f"{a.handle.num_rows} DRAM rows each")

    conj = a & b          # 4 AAPs per row: copy, copy, init T2=0, TRA
    disj = a | b          # same with the all-ones control row
    parity = a ^ b        # 5 AAPs + 2 APs per row (Figure 8c)
    complement = ~a       # 2 AAPs per row through the dual-contact cells

    assert np.array_equal(conj.to_bits(), bits_a & bits_b)
    assert np.array_equal(disj.to_bits(), bits_a | bits_b)
    assert np.array_equal(parity.to_bits(), bits_a ^ bits_b)
    assert np.array_equal(complement.to_bits(), ~bits_a)
    print("all four results verified bit-exact against numpy")

    print(f"\npopcount(a & b) = {conj.popcount()}")

    device = system.device
    stats = device.controller.stats
    acts, pres, _, _ = device.chip.trace.counts()
    energy = trace_energy_nj(device.chip.trace, device.row_bytes)
    print(f"\ndevice-side accounting:")
    print(f"  AAP primitives executed : {stats.aap_count}")
    print(f"  AP primitives executed  : {stats.ap_count}")
    print(f"  ACTIVATEs / PRECHARGEs  : {acts} / {pres}")
    print(f"  bank-parallel makespan  : {device.elapsed_ns:,.0f} ns")
    print(f"  DRAM energy             : {energy:,.1f} nJ")
    print(f"  (the same work over a DDR3 channel would move "
          f"{4 * 3 * a.handle.num_rows * device.row_bytes / 1024:,.0f} KB)")


if __name__ == "__main__":
    main()
