#!/usr/bin/env python
"""Database analytics with bitmap indices (the Figure 10 workload).

A user-analytics service tracks daily activity and attributes of its
users as bitmap indices and asks: "how many unique users were active
every week for the past w weeks, and how many male users were active
each week?"  The query is pure bulk bitwise work (6w ORs, 2w-1 ANDs,
w+1 bitcounts), executed here on the baseline CPU cost model and on the
Ambit-accelerated system, with identical (verified) answers.

Run:  python examples/database_analytics.py
"""

from repro.apps import bitmap_index as bi
from repro.sim import AmbitContext, CpuContext


def run(users: int, weeks: int) -> None:
    workload = bi.generate_workload(users, weeks, seed=7)
    reference = bi.reference_query(workload, weeks)

    baseline_ctx = CpuContext()
    baseline = bi.run_query(baseline_ctx, workload, weeks)
    ambit_ctx = AmbitContext()
    ambit = bi.run_query(ambit_ctx, workload, weeks)

    for result in (baseline, ambit):
        assert result.unique_active_every_week == reference.unique_active_every_week
        assert result.male_active_per_week == reference.male_active_per_week

    speedup = baseline.elapsed_ns / ambit.elapsed_ns
    print(f"u = {users:>10,} users, w = {weeks} weeks")
    print(f"  unique users active every week : {baseline.unique_active_every_week:,}")
    print(f"  male active per week           : "
          f"{[f'{c:,}' for c in baseline.male_active_per_week]}")
    print(f"  baseline CPU  : {baseline.elapsed_ns / 1e6:8.2f} ms "
          f"(bitwise {baseline_ctx.breakdown['or'] + baseline_ctx.breakdown['and']:,.0f} ns, "
          f"bitcount {baseline_ctx.breakdown['bitcount']:,.0f} ns)")
    print(f"  Ambit         : {ambit.elapsed_ns / 1e6:8.2f} ms "
          f"(bitwise {ambit_ctx.breakdown['or'] + ambit_ctx.breakdown['and']:,.0f} ns, "
          f"bitcount {ambit_ctx.breakdown['bitcount']:,.0f} ns)")
    print(f"  speedup       : {speedup:.1f}X   (paper: 5.4X - 6.6X)\n")


def main() -> None:
    print("Bitmap-index analytics query, baseline vs Ambit\n")
    for users in (2_000_000, 8_000_000):
        for weeks in (2, 3, 4):
            run(users, weeks)


if __name__ == "__main__":
    main()
