#!/usr/bin/env python
"""XOR-based encryption and secret sharing in memory (Section 8.4.3).

Two bulk-XOR workloads on the Ambit cost model:

1. a counter-mode stream cipher encrypting/decrypting a buffer with one
   bulk XOR per pass, and
2. XOR secret sharing: a bitmap split into n shares whose XOR
   reconstructs it, with every incomplete subset uniformly random.

Run:  python examples/secure_vault.py
"""

import numpy as np

from repro.apps.crypto import (
    combine_shares,
    make_shares,
    xor_decrypt,
    xor_encrypt,
)
from repro.sim import AmbitContext, CpuContext


def main() -> None:
    rng = np.random.default_rng(9)
    words = 1 << 18  # 2 MB buffer
    plaintext = rng.integers(0, 2**63, size=words, dtype=np.uint64)
    key, nonce = b"a rigorously chosen key", b"nonce-0001"

    # --- stream cipher ------------------------------------------------
    base_ctx = CpuContext()
    ct_base = xor_encrypt(base_ctx, plaintext, key, nonce)
    ambit_ctx = AmbitContext()
    ciphertext = xor_encrypt(ambit_ctx, plaintext, key, nonce)
    assert np.array_equal(ciphertext, ct_base)
    assert not np.array_equal(ciphertext, plaintext)

    recovered = xor_decrypt(AmbitContext(), ciphertext, key, nonce)
    assert np.array_equal(recovered, plaintext)
    print(f"stream cipher over {plaintext.nbytes // 2**20} MiB:")
    print(f"  baseline CPU : {base_ctx.elapsed_ns / 1e3:9.1f} us")
    print(f"  Ambit        : {ambit_ctx.elapsed_ns / 1e3:9.1f} us "
          f"({base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:.1f}X)")

    # --- secret sharing -----------------------------------------------
    ctx = AmbitContext()
    shares = make_shares(ctx, plaintext, n=4, rng=rng)
    rebuilt = combine_shares(ctx, shares)
    assert np.array_equal(rebuilt, plaintext)
    partial = combine_shares(AmbitContext(), shares[:3])
    assert not np.array_equal(partial, plaintext)
    print(f"\n4-way XOR secret sharing:")
    print(f"  split + reconstruct on Ambit: {ctx.elapsed_ns / 1e3:.1f} us")
    print(f"  any 3 shares reveal nothing (reconstruction fails as expected)")


if __name__ == "__main__":
    main()
