#!/usr/bin/env python
"""Analytical queries on a BitWeaving column store (WideTable-style).

A fact table of customer events is stored column-wise in BitWeaving-V
layout; analytical filters compile to bulk bitwise operations over
predicate masks -- the workload WideTable builds an entire database
around, and the one Ambit accelerates end to end.

Run:  python examples/warehouse_queries.py
"""

import numpy as np

from repro.apps.columnstore import Eq, Ge, Le, Range, Table, select_count
from repro.sim import AmbitContext, CpuContext


def main() -> None:
    rng = np.random.default_rng(23)
    rows = 2_000_000
    table = Table.from_columns(
        {
            "age": (rng.integers(18, 96, size=rows, dtype=np.uint64), 7),
            "spend": (rng.integers(0, 1 << 14, size=rows, dtype=np.uint64), 14),
            "region": (rng.integers(0, 16, size=rows, dtype=np.uint64), 4),
            "churned": (rng.integers(0, 2, size=rows, dtype=np.uint64), 1),
        }
    )
    print(f"fact table: {rows:,} rows x {len(table.columns)} bit-weaved "
          f"columns\n")

    queries = {
        "high-spend adults in region 3":
            Range("age", 25, 60) & Ge("spend", 8000) & Eq("region", 3),
        "churn risk (low spend, not churned yet)":
            Le("spend", 500) & Eq("churned", 0),
        "outside the core demographic":
            ~Range("age", 25, 60),
        "promo target (young OR lapsed big spender)":
            Le("age", 24) | (Eq("churned", 1) & Ge("spend", 12000)),
    }

    print(f"{'query':>45} {'count':>9} {'cpu ms':>8} {'ambit ms':>9} "
          f"{'speedup':>8}")
    for name, predicate in queries.items():
        base_ctx, ambit_ctx = CpuContext(), AmbitContext()
        base = select_count(base_ctx, table, predicate, ambit=False)
        accel = select_count(ambit_ctx, table, predicate, ambit=True)
        assert base.count == accel.count
        print(f"{name:>45} {accel.count:>9,} "
              f"{base.elapsed_ns / 1e6:>8.2f} {accel.elapsed_ns / 1e6:>9.2f} "
              f"{base.elapsed_ns / accel.elapsed_ns:>7.1f}X")

    print("\nall counts verified identical between baseline and Ambit")

    # Aggregates: SUM assembled from weighted popcounts -- no adder.
    from repro.apps.columnstore import select_sum

    predicate = Range("age", 25, 60) & Eq("region", 3)
    base_ctx, ambit_ctx = CpuContext(), AmbitContext()
    total_base = select_sum(base_ctx, table, "spend", predicate, ambit=False)
    total = select_sum(ambit_ctx, table, "spend", predicate, ambit=True)
    assert total == total_base
    print(f"\nselect sum(spend) where 25<=age<=60 and region=3: {total:,}")
    print(f"  baseline {base_ctx.elapsed_ns / 1e6:.2f} ms, "
          f"Ambit {ambit_ctx.elapsed_ns / 1e6:.2f} ms "
          f"({base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:.1f}X)")


if __name__ == "__main__":
    main()
