#!/usr/bin/env python
"""TRA reliability under process variation (the Section 6 study).

Reproduces the paper's two circuit-level analyses:

1. the adversarial corner -- every charge-sharing component pushed
   against the triple-row activation simultaneously -- and the largest
   variation it tolerates (paper: ~+/-6 %), and
2. the Monte-Carlo failure-rate sweep of Table 2,

then runs a *whole Ambit device* with an analog TRA model plugged into
its sense amplifiers to show bulk AND results degrading as variation
grows.

Run:  python examples/reliability_study.py
"""

import numpy as np

from repro.circuit import (
    AnalogSenseModel,
    VariationSpec,
    format_table2,
    max_tolerable_variation,
    table2_experiment,
    tra_deviation_ideal,
    worst_case_corner_margin,
)
from repro.core import AmbitDevice, BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry


def main() -> None:
    print("Nominal TRA bitline deviation (Eq. 1, k=2): "
          f"{tra_deviation_ideal(2) * 1000:.0f} mV")
    print(f"Adversarial-corner margin at +/-5%: "
          f"{worst_case_corner_margin(0.05) * 1000:+.1f} mV")
    print(f"Largest variation the corner tolerates: "
          f"+/-{max_tolerable_variation() * 100:.1f}%  (paper: ~6%)\n")

    print(format_table2(table2_experiment(trials=50_000)))

    print("\nBulk AND on a full device with analog sense amplifiers:")
    geo = small_test_geometry(rows=32, row_bytes=512, banks=1, subarrays_per_bank=1)
    rng = np.random.default_rng(3)
    words = geo.subarray.words_per_row
    a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
    b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
    loc = lambda r: RowLocation(bank=0, subarray=0, address=r)
    for level in (0.0, 0.05, 0.15, 0.25):
        device = AmbitDevice(
            geometry=geo,
            charge_model_factory=lambda level=level: AnalogSenseModel(
                VariationSpec(level=level), np.random.default_rng(17)
            ),
        )
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(BulkOp.AND, loc(2), loc(0), loc(1))
        got = device.read_row(loc(2))
        wrong = int(
            sum(int(x).bit_count() for x in np.asarray(got ^ (a & b)))
        )
        print(f"  +/-{level * 100:4.0f}% variation: "
              f"{wrong:4d} / {geo.subarray.row_bits} result bits wrong")


if __name__ == "__main__":
    main()
