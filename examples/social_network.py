#!/usr/bin/env python
"""Graph analytics over an adjacency bit-matrix.

A social-network-style graph is stored as dense adjacency bitvectors,
and two classic analyses run as bulk bitwise work: breadth-first
"degrees of separation" (frontier OR-reduce, AND NOT visited per level)
and triangle counting (one bulk AND + bitcount per edge).

The demo graph is small (so the functional run is instant), and small
means *sub-row*: exactly the case Section 5.4.3's microarchitecture
check keeps on the CPU.  The scaling section therefore prices a BFS
level at community sizes from 4 K to 1 M members, showing where in-DRAM
execution takes over.  A WAH-compression routing decision for sparse
adjacency rows rounds out the picture.

Run:  python examples/social_network.py
"""

import numpy as np

from repro.apps.compression import ambit_or_wah_decision, wah_encode
from repro.apps.graph import BitGraph, bfs_levels, triangle_count
from repro.core.microprograms import BulkOp
from repro.sim import AmbitContext, CpuContext


def build_demo_graph(n, rng):
    edges = []
    for base in range(0, n, 40):
        members = range(base, min(base + 40, n))
        for u in members:
            for v in members:
                if u < v and rng.random() < 0.2:
                    edges += [(u, v), (v, u)]
    for _ in range(n // 4):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges += [(int(u), int(v)), (int(v), int(u))]
    return BitGraph.from_edges(n, edges), len(set(edges)) // 2


def main() -> None:
    rng = np.random.default_rng(13)
    n = 400
    graph, friendships = build_demo_graph(n, rng)
    print(f"graph: {n} users, {friendships} friendships\n")

    ctx = CpuContext()
    levels = bfs_levels(ctx, graph, source=0)
    by_level = {}
    for user, level in levels.items():
        by_level.setdefault(level, []).append(user)
    print("degrees of separation from user 0:")
    for level in sorted(by_level):
        print(f"  level {level}: {len(by_level[level])} users")

    triangles = triangle_count(CpuContext(), graph)
    print(f"triangles (friend-of-friend closures): {triangles:,}")
    print(f"(adjacency rows here are {graph.words * 8} B -- far below the "
          f"8 KB DRAM row, so the bbop check keeps these ops on the CPU)\n")

    # Scaling: cost of one BFS level (32-node frontier) vs network size.
    print("cost of one BFS level (32-row OR-reduce + NOT + AND):")
    print(f"{'members':>10} {'cpu us':>9} {'ambit us':>9} {'winner':>7}")
    for members in (4_096, 65_536, 1_048_576):
        words = members // 64
        rows = [
            rng.integers(0, 2**63, size=words, dtype=np.uint64)
            for _ in range(32)
        ]
        visited = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        results = {}
        for name, ctx in (("cpu", CpuContext()), ("ambit", AmbitContext())):
            acc = rows[0]
            for r in rows[1:]:
                acc = ctx.bulk_op(BulkOp.OR, acc, r)
            not_visited = ctx.bulk_op(BulkOp.NOT, visited)
            ctx.bulk_op(BulkOp.AND, acc, not_visited)
            results[name] = ctx.elapsed_ns
        winner = min(results, key=results.get)
        print(f"{members:>10,} {results['cpu'] / 1e3:>9.1f} "
              f"{results['ambit'] / 1e3:>9.1f} {winner:>7}")

    # Storage routing: dense community rows -> Ambit; a near-empty
    # "new user" row compresses away and stays on the CPU under WAH.
    print()
    dense_bits = np.unpackbits(
        graph.rows[0].view(np.uint8), bitorder="little"
    )[:n].astype(bool)
    sparse_bits = np.zeros(63 * 64, dtype=bool)
    sparse_bits[5] = True
    for name, bits in (("community member", dense_bits),
                       ("new user", sparse_bits)):
        bitmap = wah_encode(bits)
        print(f"adjacency row of a {name}: compression "
              f"{bitmap.compression_ratio:4.1f}x -> route to "
              f"{ambit_or_wah_decision(bitmap)}")


if __name__ == "__main__":
    main()
