#!/usr/bin/env python
"""DNA read pre-alignment filtering (Section 8.4.4).

Candidate read mappings are screened with a bit-parallel
Shifted-Hamming-Distance-style filter built entirely from bulk bitwise
operations: per-base match masks (AND/OR), mismatch complement (NOT),
and shift-tolerant error intersection (AND).  Read mappers screen
thousands of candidates per batch, so the filter runs in *batched*
form: all candidate lanes are concatenated into row-scale bitvectors
and filtered by one set of bulk operations.

Run:  python examples/genome_filter.py
"""

import numpy as np

from repro.apps.dna import hamming_distance, shd_filter_batch
from repro.sim import AmbitContext, CpuContext
from repro.workloads import mutate_dna, random_dna, read_windows


def main() -> None:
    rng = np.random.default_rng(21)
    reference = random_dna(200_000, rng)
    read_length, max_errors = 512, 8
    batch = 512  # candidates screened per bulk pass

    # One true mapping site (few mutations) buried among random
    # candidate windows (~75% mismatches each).
    true_offset = 1234
    read, _ = mutate_dna(
        reference[true_offset : true_offset + read_length], 5, rng
    )
    candidates = [(true_offset, reference[true_offset:true_offset + read_length])]
    candidates += read_windows(reference, read_length, count=batch - 1, rng=rng)
    reads = [read] * len(candidates)
    windows = [w for _, w in candidates]

    base_ctx = CpuContext()
    base_decisions = shd_filter_batch(base_ctx, reads, windows, max_errors)
    ambit_ctx = AmbitContext()
    decisions = shd_filter_batch(ambit_ctx, reads, windows, max_errors)

    assert [d.accepted for d in decisions] == [d.accepted for d in base_decisions]
    for (offset, window), decision in zip(candidates, decisions):
        assert decision.mismatches == hamming_distance(read, window)
        if decision.accepted:
            print(f"  candidate @ {offset:>7}: ACCEPT "
                  f"({decision.mismatches} mismatches)")

    accepted = sum(d.accepted for d in decisions)
    print(f"\nscreened {len(candidates)} candidates in one batch: "
          f"{accepted} accepted, {len(candidates) - accepted} rejected")
    print(f"filter time, baseline CPU: {base_ctx.elapsed_ns:,.0f} ns")
    print(f"filter time, Ambit       : {ambit_ctx.elapsed_ns:,.0f} ns "
          f"({base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:.1f}X)")


if __name__ == "__main__":
    main()
