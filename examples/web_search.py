#!/usr/bin/env python
"""Web-search document filtering with BitFunnel signatures (Section 8.4.1).

Documents are indexed as bit-sliced Bloom-filter signatures; a query
ANDs the slices selected by its terms, filtering thousands of documents
per row-wide operation.  Candidates are then verified exactly, so the
end-to-end results are true matches.

Run:  python examples/web_search.py
"""

import numpy as np

from repro.apps.bitfunnel import BitFunnelIndex
from repro.sim import AmbitContext, CpuContext
from repro.workloads import synthetic_corpus


def main() -> None:
    rng = np.random.default_rng(5)
    num_docs = 200_000
    corpus = synthetic_corpus(num_docs, terms_per_doc=12, rng=rng)
    index = BitFunnelIndex.build(corpus, signature_bits=512, num_hashes=3)
    print(f"indexed {num_docs:,} documents "
          f"({index.signature_bits}-bit signatures, {index.num_hashes} hashes)\n")

    queries = [corpus[10][:2], corpus[100][:3], corpus[2000][:1]]
    for terms in queries:
        base_ctx = CpuContext()
        base_matches = index.match(base_ctx, terms)
        ambit_ctx = AmbitContext()
        ambit_matches = index.match(ambit_ctx, terms)
        assert base_matches == ambit_matches == index.match_reference(terms)

        # Bloom signatures admit false positives; verify exactly.
        true_matches = [
            d for d in ambit_matches if all(t in corpus[d] for t in terms)
        ]
        print(f"query {terms}")
        print(f"  signature candidates : {len(ambit_matches):>5} "
              f"(verified matches: {len(true_matches)})")
        print(f"  baseline filter time : {base_ctx.elapsed_ns:>9,.0f} ns")
        print(f"  Ambit filter time    : {ambit_ctx.elapsed_ns:>9,.0f} ns "
              f"({base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:.1f}X)\n")


if __name__ == "__main__":
    main()
