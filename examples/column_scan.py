#!/usr/bin/env python
"""Column scans with BitWeaving (the Figure 11 workload).

A column of b-bit integers is stored in BitWeaving-V bit-plane layout
and scanned with ``select count(*) from T where c1 <= val <= c2``.  The
baseline CPU fuses the comparison logic into registers while streaming
the planes; Ambit executes every mask update as an in-DRAM bulk
operation and leaves only the bitcount to the CPU.

Run:  python examples/column_scan.py
"""

import numpy as np

from repro.apps.bitweaving import (
    BitWeavingColumn,
    scan_range_ambit,
    scan_range_baseline,
)
from repro.sim import AmbitContext, CpuContext
from repro.workloads import column_values


def main() -> None:
    rng = np.random.default_rng(11)
    rows = 2_000_000
    print(f"select count(*) from T where c1 <= val <= c2   (r = {rows:,} rows)\n")
    print(f"{'bits/value':>10} {'baseline ms':>12} {'ambit ms':>10} "
          f"{'speedup':>8}  {'count':>9}")
    for bits in (4, 8, 16, 24, 32):
        values = column_values(rows, bits, rng)
        column = BitWeavingColumn.encode(values, bits)
        c1, c2 = (1 << bits) // 4, (3 << bits) // 4 - 1

        base_ctx = CpuContext()
        _, base_count = scan_range_baseline(base_ctx, column, c1, c2)
        ambit_ctx = AmbitContext()
        _, ambit_count = scan_range_ambit(ambit_ctx, column, c1, c2)

        expected = int(((values >= c1) & (values <= c2)).sum())
        assert base_count == ambit_count == expected

        print(f"{bits:>10} {base_ctx.elapsed_ns / 1e6:>12.2f} "
              f"{ambit_ctx.elapsed_ns / 1e6:>10.2f} "
              f"{base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:>7.1f}X "
              f"{ambit_count:>9,}")
    print("\nSpeedup grows with bits/value because the CPU-side bitcount")
    print("becomes a smaller fraction of the work (paper: 1.8X - 11.8X).")


if __name__ == "__main__":
    main()
