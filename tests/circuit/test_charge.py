"""Charge-sharing math: Equation 1 and its generalisation."""

import numpy as np
import pytest

from repro.circuit import constants
from repro.circuit.charge import (
    charge_sharing_deviation,
    majority_expected,
    single_cell_deviation,
    tra_deviation_ideal,
)
from repro.errors import ConfigError


class TestEquationOne:
    def test_sign_follows_majority(self):
        # delta > 0 iff k >= 2 (Section 3.1).
        assert tra_deviation_ideal(0) < 0
        assert tra_deviation_ideal(1) < 0
        assert tra_deviation_ideal(2) > 0
        assert tra_deviation_ideal(3) > 0

    def test_closed_form(self):
        # delta = (2k-3) Cc / (6Cc + 2Cb) * VDD, literally Equation 1.
        cc, cb, vdd = 22e-15, 77e-15, 1.5
        for k in range(4):
            expected = (2 * k - 3) * cc / (6 * cc + 2 * cb) * vdd
            assert tra_deviation_ideal(k, cc, cb, vdd) == pytest.approx(expected)

    def test_symmetry(self):
        # k and 3-k deviations are mirror images.
        assert tra_deviation_ideal(3) == pytest.approx(-tra_deviation_ideal(0))
        assert tra_deviation_ideal(2) == pytest.approx(-tra_deviation_ideal(1))

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            tra_deviation_ideal(4)

    def test_tra_deviation_smaller_than_single_cell(self):
        # Issue 1 of Section 3.2: the TRA margin is reduced.
        assert abs(tra_deviation_ideal(2)) < abs(single_cell_deviation(True))

    def test_single_cell_signs(self):
        assert single_cell_deviation(True) > 0
        assert single_cell_deviation(False) < 0


class TestGeneralisedChargeSharing:
    def test_reduces_to_equation_one(self):
        cc, cb, vdd = (
            constants.CELL_CAPACITANCE_F,
            constants.BITLINE_CAPACITANCE_F,
            constants.VDD,
        )
        for k in range(4):
            volts = [vdd if i < k else 0.0 for i in range(3)]
            general = charge_sharing_deviation([cc] * 3, volts, cb, vdd / 2)
            assert float(general) == pytest.approx(tra_deviation_ideal(k))

    def test_broadcasts_over_arrays(self):
        cc = np.full(10, constants.CELL_CAPACITANCE_F)
        volts = [np.full(10, constants.VDD)] * 2 + [np.zeros(10)]
        out = charge_sharing_deviation([cc] * 3, volts)
        assert out.shape == (10,)
        assert (out > 0).all()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            charge_sharing_deviation([1e-15], [1.0, 0.0])

    def test_no_cells_means_no_deviation(self):
        assert float(charge_sharing_deviation([], [])) == pytest.approx(0.0)

    def test_heavier_empty_cell_reduces_margin(self):
        cc, vdd = constants.CELL_CAPACITANCE_F, constants.VDD
        nominal = charge_sharing_deviation(
            [cc, cc, cc], [vdd, vdd, 0.0]
        )
        heavy_empty = charge_sharing_deviation(
            [cc, cc, cc * 1.25], [vdd, vdd, 0.0]
        )
        assert float(heavy_empty) < float(nominal)


class TestMajorityReference:
    def test_all_patterns(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert majority_expected([a, b, c]) == (
                        1 if a + b + c >= 2 else 0
                    )

    def test_bad_input(self):
        with pytest.raises(ConfigError):
            majority_expected([0, 1])
        with pytest.raises(ConfigError):
            majority_expected([0, 1, 2])
