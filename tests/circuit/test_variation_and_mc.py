"""Process variation sampling, analog sensing, and the Table 2 study."""

import numpy as np
import pytest

from repro.circuit import constants
from repro.circuit.montecarlo import (
    TABLE2_LEVELS,
    MonteCarloResult,
    format_table2,
    table2_experiment,
    tra_failure_rate,
)
from repro.circuit.senseamp_dynamics import (
    AnalogSenseModel,
    max_tolerable_variation,
    worst_case_corner_margin,
)
from repro.circuit.variation import VariationSampler, VariationSpec
from repro.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestVariationSampler:
    def test_zero_level_is_exact(self, rng):
        s = VariationSampler(VariationSpec(level=0.0), rng)
        assert (s.relative(100) == 0).all()
        assert (s.cell_capacitance(10) == constants.CELL_CAPACITANCE_F).all()

    def test_draws_bounded_by_level(self, rng):
        s = VariationSampler(VariationSpec(level=0.1), rng)
        draws = s.relative(10_000)
        assert np.abs(draws).max() <= 0.1

    def test_stored_voltage_polarity(self, rng):
        s = VariationSampler(VariationSpec(level=0.1), rng)
        bits = np.array([1, 1, 0, 0])
        v = s.stored_voltage(bits)
        assert (v[:2] > constants.VDD * 0.8).all()
        assert (v[2:] < constants.VDD * 0.2).all()

    def test_sense_margin_grows_with_level(self, rng):
        lo = VariationSampler(VariationSpec(level=0.05), rng)
        hi = VariationSampler(VariationSpec(level=0.25), rng)
        assert hi.sense_margin_sigma() > lo.sense_margin_sigma()

    def test_invalid_level(self):
        with pytest.raises(ConfigError):
            VariationSpec(level=1.5)

    def test_invalid_sigma(self):
        with pytest.raises(ConfigError):
            VariationSpec(level=0.1, sigma_fraction=0)


class TestAnalogSenseModel:
    def test_zero_variation_matches_majority(self, rng):
        model = AnalogSenseModel(VariationSpec(level=0.0), rng)
        bits = rng.integers(0, 2, size=(3, 4096)).astype(np.uint8)
        expected = (bits.sum(axis=0) >= 2).astype(np.uint8)
        assert np.array_equal(model.resolve_tra(bits), expected)

    def test_small_variation_still_reliable(self, rng):
        # Table 2: zero failures through +/-5 %.
        model = AnalogSenseModel(VariationSpec(level=0.05), rng)
        bits = rng.integers(0, 2, size=(3, 20_000)).astype(np.uint8)
        expected = (bits.sum(axis=0) >= 2).astype(np.uint8)
        assert np.array_equal(model.resolve_tra(bits), expected)

    def test_deviation_shape_checked(self, rng):
        model = AnalogSenseModel(VariationSpec(level=0.1), rng)
        with pytest.raises(ConfigError):
            model.deviations(np.zeros((2, 10), dtype=np.uint8))

    def test_deviation_signs_at_zero_variation(self, rng):
        model = AnalogSenseModel(VariationSpec(level=0.0), rng)
        charged = np.array([[1], [1], [0]], dtype=np.uint8)
        empty = np.array([[0], [0], [1]], dtype=np.uint8)
        assert model.deviations(charged)[0] > 0
        assert model.deviations(empty)[0] < 0


class TestWorstCaseCorner:
    def test_tolerance_is_about_six_percent(self):
        # The paper's adversarial corner result.
        tolerance = max_tolerable_variation()
        assert 0.05 <= tolerance <= 0.07

    def test_margin_positive_below_corner(self):
        assert worst_case_corner_margin(0.03) > 0

    def test_margin_negative_above_corner(self):
        assert worst_case_corner_margin(0.10) < 0

    def test_margin_monotone_decreasing(self):
        margins = [worst_case_corner_margin(p) for p in (0.0, 0.02, 0.05, 0.08)]
        assert all(a > b for a, b in zip(margins, margins[1:]))

    def test_negative_level_rejected(self):
        with pytest.raises(ConfigError):
            worst_case_corner_margin(-0.1)


class TestTable2:
    def test_zero_levels_have_zero_failures(self):
        for level in (0.0, 0.05):
            result = tra_failure_rate(level, trials=5_000)
            assert result.failures == 0

    def test_failure_rate_monotone_in_level(self):
        rates = [
            tra_failure_rate(level, trials=20_000).failure_rate
            for level in (0.10, 0.15, 0.20, 0.25)
        ]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_table2_regime(self):
        # Land in the paper's regime: sub-percent at 10 %, tens of
        # percent at 25 %.
        results = table2_experiment(trials=20_000, seed=9)
        assert results[0.10].failure_percent < 1.5
        assert 15.0 <= results[0.25].failure_percent <= 40.0

    def test_marginal_patterns_fail_more(self):
        random = tra_failure_rate(0.2, trials=20_000, patterns="random")
        marginal = tra_failure_rate(0.2, trials=20_000, patterns="marginal")
        assert marginal.failure_rate > random.failure_rate

    def test_result_properties(self):
        r = MonteCarloResult(level=0.1, trials=200, failures=3)
        assert r.failure_rate == pytest.approx(0.015)
        assert r.failure_percent == pytest.approx(1.5)

    def test_bad_trials(self):
        with pytest.raises(ConfigError):
            tra_failure_rate(0.1, trials=0)

    def test_bad_patterns(self):
        with pytest.raises(ConfigError):
            tra_failure_rate(0.1, trials=10, patterns="exotic")

    def test_format_includes_paper_column(self):
        text = format_table2(table2_experiment(trials=1_000))
        assert "Paper %" in text
        assert "+/-25%" in text

    def test_levels_constant_matches_paper(self):
        assert TABLE2_LEVELS == (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)
