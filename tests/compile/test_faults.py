"""Compiled operations survive seeded faults through the recovery ladder.

Each test arms one concrete failure mode against a
:class:`~repro.faults.recover.FaultTolerantSession` and asserts both
the *outcome* (destination holds the oracle image) and the *diagnosis*
(the recovery log names the right rung).  The scenarios mirror the
fixed-op recovery suite: transient TRA glitch -> retry, stuck row ->
spare remap (destination, source, and scratch variants), dead DCC ->
reroute, and the graceful dead end when no healthy route remains.
"""

import numpy as np
import pytest

from repro.compile import compile_expr, parse_expr
from repro.core.device import AmbitDevice
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.faults.recover import FaultTolerantSession, RecoveryPolicy

#: Working layout inside a 48-row subarray: operands+dst in rows 0-5,
#: scratch at 8-9, spares at 10-17 (all inside the D-group).
SCRATCH = (8, 9)
SPARES = tuple(range(10, 18))
DST = RowLocation(0, 0, 3)
SRC1 = RowLocation(0, 0, 0)
SRC2 = RowLocation(0, 0, 1)
SRC3 = RowLocation(0, 0, 2)
TEMP_BASE = 4


@pytest.fixture
def rig():
    device = AmbitDevice(
        geometry=small_test_geometry(rows=48, row_bytes=32)
    )
    session = FaultTolerantSession(device)
    session.set_scratch(0, 0, SCRATCH)
    session.add_spares(0, 0, SPARES)
    words = device.geometry.subarray.words_per_row
    rng = np.random.default_rng(21)
    images = [
        rng.integers(0, 1 << 63, words, dtype=np.uint64) for _ in range(3)
    ]
    for loc, image in zip((SRC1, SRC2, SRC3), images):
        session.write_row(loc, image)
    session.write_row(DST, np.zeros(words, dtype=np.uint64))
    return device, session, images


def _run(session, cop):
    sources = (SRC1, SRC2, SRC3)[: cop.arity]
    temps = [
        RowLocation(0, 0, TEMP_BASE + t) for t in range(cop.num_temps)
    ]
    session.run_compiled(
        cop,
        [DST],
        [[loc] for loc in sources],
        [[loc] for loc in temps],
    )
    return temps


def _outcomes(session):
    return {(record.kind, record.action) for record in session.log}


class TestTransientFaults:
    def test_tra_glitch_is_retried(self, rig):
        device, session, (im1, im2, im3) = rig
        cop = compile_expr(parse_expr("maj(a, b, c)"), name="carry")
        subarray = device.chip.bank(0).subarray(0)
        words = device.geometry.subarray.words_per_row
        flip = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))

        def hook(sensed, _sub=subarray, _flip=flip):
            _sub.tra_fault_hook = None  # one-shot glitch
            return _flip

        subarray.tra_fault_hook = hook
        _run(session, cop)
        want = (im1 & im2) | (im1 & im3) | (im2 & im3)
        assert np.array_equal(device.read_row(DST), want)
        assert ("tra_flip", "retried") in _outcomes(session)
        assert session.unrecovered_count == 0


class TestStuckRows:
    @pytest.mark.parametrize("victim", ["dst", "source", "temp"])
    def test_stuck_row_is_remapped(self, rig, victim):
        device, session, (im1, im2, im3) = rig
        cop = compile_expr(
            parse_expr("mux(c, a ^ b, a & b)"), name="muxed"
        )
        assert cop.num_temps > 0
        words = device.geometry.subarray.words_per_row
        junk = np.full(words, np.uint64(0xDEADBEEFDEADBEEF))
        subarray = device.chip.bank(0).subarray(0)
        repair = device.controller.repair
        if victim == "dst":
            target = DST
        elif victim == "source":
            target = SRC1
        else:
            target = RowLocation(0, 0, TEMP_BASE)
        # Stick the *physical* row currently backing the logical one.
        subarray.inject_stuck_row(
            repair.translate(target.bank, target.subarray, target.address),
            junk,
        )
        _run(session, cop)
        want = (im3 & (im1 ^ im2)) | (~im3 & (im1 & im2))
        assert np.array_equal(device.read_row(DST), want)
        assert ("stuck_row", "remapped") in _outcomes(session)
        assert session.unrecovered_count == 0
        # The victim now lives on a spare row.
        assert (
            repair.translate(target.bank, target.subarray, target.address)
            != target.address
        )

    def test_remapped_rows_stay_remapped(self, rig):
        device, session, (im1, im2, _) = rig
        cop = compile_expr(parse_expr("a ^ b"), name="parity")
        words = device.geometry.subarray.words_per_row
        subarray = device.chip.bank(0).subarray(0)
        subarray.inject_stuck_row(
            device.controller.repair.translate(
                DST.bank, DST.subarray, DST.address
            ),
            np.full(words, np.uint64(0x5555555555555555)),
        )
        _run(session, cop)
        assert ("stuck_row", "remapped") in _outcomes(session)
        before = len(session.log)
        # The next run goes through the spare with no new recovery.
        _run(session, cop)
        assert np.array_equal(device.read_row(DST), im1 ^ im2)
        assert len(session.log) == before


class TestDccFaults:
    def test_single_dcc_op_reroutes(self, rig):
        device, session, (im1, im2, _) = rig
        cop = compile_expr(parse_expr("~(a & b)"), name="nander")
        assert cop.uses_single_dcc and not cop.uses_dual_dcc
        subarray = device.chip.bank(0).subarray(0)
        subarray.inject_dcc_fault(device.amap.row_dcc(0))
        _run(session, cop)
        assert np.array_equal(device.read_row(DST), ~(im1 & im2))
        assert ("dcc", "rerouted") in _outcomes(session)
        assert device.controller.dcc_route[(0, 0)] == 1
        assert session.unrecovered_count == 0

    def test_dual_dcc_op_fails_gracefully(self, rig):
        device, session, _ = rig
        cop = compile_expr(parse_expr("a ^ b"), name="parity")
        assert cop.uses_dual_dcc
        subarray = device.chip.bank(0).subarray(0)
        subarray.inject_dcc_fault(device.amap.row_dcc(0))
        subarray.inject_dcc_fault(device.amap.row_dcc(1))
        _run(session, cop)  # must not raise under the lenient policy
        assert ("op_mismatch", "unrecovered") in _outcomes(session)
        assert session.unrecovered_count > 0

    def test_strict_policy_raises(self, rig):
        from repro.errors import FaultError

        device, session, _ = rig
        session.policy = RecoveryPolicy(strict=True)
        cop = compile_expr(parse_expr("a ^ b"), name="parity")
        subarray = device.chip.bank(0).subarray(0)
        subarray.inject_dcc_fault(device.amap.row_dcc(0))
        subarray.inject_dcc_fault(device.amap.row_dcc(1))
        with pytest.raises(FaultError):
            _run(session, cop)


class TestCleanRunsLeaveNoTrace:
    def test_no_faults_no_records(self, rig):
        device, session, (im1, im2, im3) = rig
        cop = compile_expr(
            parse_expr("maj(a, ~b, c) ^ a"), name="clean"
        )
        _run(session, cop)
        want = (((im1 & ~im2) | (im1 & im3) | (~im2 & im3)) ^ im1)
        assert np.array_equal(device.read_row(DST), want)
        assert list(session.log) == []
        assert session.unrecovered_count == 0
