"""Golden command-sequence regression tests for compiled operations.

The synthesized microprograms for AND, XOR, MUX, and the full-adder
carry are pinned byte-for-byte to checked-in traces, exactly like the
fixed-op goldens.  Two extra assertions pin the headline parity claim:
the compiler's AND and XOR command streams are *identical* to the
hand-written native microprograms -- not merely equivalent.
"""

import pytest

from repro.core.microprograms import BulkOp
from tests.golden.regen import (
    COMPILED_CASES,
    compiled_path,
    compiled_trace_text,
    golden_path,
)

REGEN_HINT = (
    "compiled command sequence drifted from tests/golden/; if this "
    "change is intentional, regenerate with `PYTHONPATH=src python -m "
    "tests.golden.regen` and commit the diff"
)


@pytest.mark.parametrize(
    "name, expr_text", COMPILED_CASES, ids=lambda v: str(v)
)
def test_compiled_golden_command_sequence(name, expr_text):
    """Byte-for-byte equality against the checked-in golden trace."""
    golden = compiled_path(name).read_text()
    assert compiled_trace_text(name, expr_text) == golden, (
        f"{name}: {REGEN_HINT}"
    )


def test_compiled_goldens_are_distinct():
    texts = {
        name: compiled_path(name).read_text()
        for name, _ in COMPILED_CASES
    }
    assert len(set(texts.values())) == len(texts)


class TestParityWithHandWrittenPrograms:
    """The compiler reaches the native command stream, byte for byte.

    This is the strongest form of the bench gate: a 1.0x ratio by
    construction, pinned as trace equality rather than a timing bound.
    """

    def test_compiled_and_is_the_native_and(self):
        assert (
            compiled_path("compiled_and").read_text()
            == golden_path(BulkOp.AND).read_text()
        )

    def test_compiled_xor_is_the_native_xor(self):
        assert (
            compiled_path("compiled_xor").read_text()
            == golden_path(BulkOp.XOR).read_text()
        )
