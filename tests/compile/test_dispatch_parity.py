"""Cross-tier differential tests for compiled operations.

A compiled op must be bit-exact on every dispatch tier -- the serial
per-row walk, the in-process fused engine, and the multi-process
sharded pool -- and observationally identical where the architecture
promises it (elapsed clock, command trace).  The plan-cache tests pin
the per-op-label statistics bugfix: compiled plans get their own
``c:<name>`` hit/miss counters instead of colliding into a fixed enum.
"""

import numpy as np
import pytest

from repro.apps.bitvector import AmbitBitSystem
from repro.compile import compile_expr, evaluate, parse_expr, variables
from repro.core.device import AmbitDevice
from repro.dram.geometry import small_test_geometry
from repro.obs import CommandLog
from repro.parallel.device import ShardedDevice

EXPR = "mux(c, a ^ b, maj(a, b, c))"

#: Striped-vector geometry: 4 rows per vector across 4 banks, so the
#: sharded tier actually shards and the plan cache sees repeated local
#: addresses.
GEO = dict(rows=64, row_bytes=32, banks=4, subarrays_per_bank=2)


def _workload(device, expr_text=EXPR, seed=3):
    """Allocate striped operands and run ``compute`` on ``device``."""
    expr = parse_expr(expr_text)
    names = variables(expr)
    system = AmbitBitSystem(device=device)
    nbits = 4 * device.row_bits
    rng = np.random.default_rng(seed)
    bits = {name: rng.integers(0, 2, nbits).astype(bool) for name in names}
    vectors = {}
    template = None
    for name in names:
        vectors[name] = system.from_bits(bits[name], like=template)
        template = template if template is not None else vectors[name]
    out = vectors[names[0]].compute(expr, **vectors)
    return out.to_bits(), evaluate(expr, bits), device.elapsed_ns


class TestTierParity:
    def test_serial_fused_sharded_bit_exact(self):
        outcomes = {}
        for tier in ("serial", "fused", "sharded"):
            with ShardedDevice(
                geometry=small_test_geometry(**GEO),
                max_workers=2,
                dispatch=tier,
            ) as device:
                got, want, elapsed = _workload(device)
                assert np.array_equal(got, want), tier
                outcomes[tier] = (got.tobytes(), elapsed)
        assert outcomes["serial"][0] == outcomes["fused"][0]
        assert outcomes["fused"][0] == outcomes["sharded"][0]
        # Fused and sharded account identically (the sharded parent
        # re-derives time from its own plan cache).
        assert outcomes["fused"][1] == outcomes["sharded"][1]

    def test_plain_device_matches_sharded(self):
        plain = AmbitDevice(geometry=small_test_geometry(**GEO))
        got_plain, want, _ = _workload(plain)
        with ShardedDevice(
            geometry=small_test_geometry(**GEO), max_workers=2
        ) as sharded:
            got_sharded, _, _ = _workload(sharded)
        assert np.array_equal(got_plain, want)
        assert np.array_equal(got_plain, got_sharded)

    def test_traced_sharded_run_is_byte_identical(self):
        texts = {}
        for kind in ("plain", "sharded"):
            if kind == "plain":
                device = AmbitDevice(geometry=small_test_geometry(**GEO))
                closer = lambda: None  # noqa: E731
            else:
                device = ShardedDevice(
                    geometry=small_test_geometry(**GEO), max_workers=2
                )
                closer = device.close
            try:
                system = AmbitBitSystem(device=device)
                cop = compile_expr(parse_expr("a ^ b"), name="parity")
                nbits = 4 * device.row_bits
                rng = np.random.default_rng(9)
                ba = rng.integers(0, 2, nbits).astype(bool)
                bb = rng.integers(0, 2, nbits).astype(bool)
                a = system.from_bits(ba)
                b = system.from_bits(bb, like=a)
                log = CommandLog(device)
                out = a.compute(cop, a=a, b=b)
                texts[kind] = log.text()
                log.detach()
                assert np.array_equal(out.to_bits(), ba ^ bb)
            finally:
                closer()
        assert texts["plain"] == texts["sharded"]


class TestCompiledPlanCacheStats:
    """The per-op-label statistics fix: compiled plans count under
    their own ``c:<name>`` keys and hit on re-issue."""

    def test_compiled_plans_hit_on_reissue(self):
        device = AmbitDevice(geometry=small_test_geometry(**GEO))
        system = AmbitBitSystem(device=device)
        cop = compile_expr(parse_expr("a & ~b"), name="hits")
        nbits = 4 * device.row_bits
        rng = np.random.default_rng(1)
        ba = rng.integers(0, 2, nbits).astype(bool)
        bb = rng.integers(0, 2, nbits).astype(bool)
        a = system.from_bits(ba)
        b = system.from_bits(bb, like=a)

        cache = device.controller.plan_cache
        out1 = a.compute(cop, a=a, b=b)
        misses_after_first = cache.misses_by_op.get("c:hits", 0)
        hits_after_first = cache.hits_by_op.get("c:hits", 0)
        assert misses_after_first > 0
        # Striped vectors repeat local addresses across stripes, so
        # repeats within the first batch already hit; a re-issue into a
        # fresh destination hits again on every warmed stripe and can
        # miss at most once (the new destination row).
        out2 = a.compute(cop, a=a, b=b)
        assert cache.hits_by_op.get("c:hits", 0) > hits_after_first
        assert (
            cache.misses_by_op.get("c:hits", 0) <= misses_after_first + 1
        )
        assert np.array_equal(out1.to_bits(), ba & ~bb)
        assert np.array_equal(out2.to_bits(), ba & ~bb)

    def test_labels_are_distinct_per_op(self):
        device = AmbitDevice(geometry=small_test_geometry(**GEO))
        system = AmbitBitSystem(device=device)
        first = compile_expr(parse_expr("a & b"), name="alpha")
        second = compile_expr(parse_expr("a | b"), name="beta")
        nbits = device.row_bits
        rng = np.random.default_rng(2)
        a = system.from_bits(rng.integers(0, 2, nbits).astype(bool))
        b = system.from_bits(
            rng.integers(0, 2, nbits).astype(bool), like=a
        )
        a.compute(first, a=a, b=b)
        a.compute(second, a=a, b=b)
        cache = device.controller.plan_cache
        assert "c:alpha" in cache.misses_by_op
        assert "c:beta" in cache.misses_by_op
        # Fixed ops keep their own labels too (the write_row COPYs ran).
        assert all(
            label.startswith("c:") or ":" not in label
            for label in cache.misses_by_op
        )

    def test_profiler_reports_compiled_labels(self):
        from repro.obs.profiler import profile

        device = AmbitDevice(geometry=small_test_geometry(**GEO))
        system = AmbitBitSystem(device=device)
        cop = compile_expr(parse_expr("a ^ b"), name="profiled")
        nbits = 4 * device.row_bits
        rng = np.random.default_rng(4)
        a = system.from_bits(rng.integers(0, 2, nbits).astype(bool))
        b = system.from_bits(
            rng.integers(0, 2, nbits).astype(bool), like=a
        )
        with profile(device) as report:
            a.compute(cop, a=a, b=b)
        assert "c:profiled" in report.plan_cache_by_op
        hits, misses = report.plan_cache_by_op["c:profiled"]
        assert hits + misses > 0
        assert "c:profiled" in report.format_table()


class TestKernelsAcrossTiers:
    """Acceptance: add and popcount match numpy on every tier."""

    @pytest.mark.parametrize("tier", ["serial", "fused", "sharded"])
    def test_add_and_popcount(self, tier):
        from repro.compile.kernels import BitColumn, add, popcount

        with ShardedDevice(
            geometry=small_test_geometry(**GEO),
            max_workers=2,
            dispatch=tier,
        ) as device:
            system = AmbitBitSystem(device=device)
            rng = np.random.default_rng(6)
            n = device.row_bits  # single-row planes keep the soak fast
            bits = 5
            lhs = rng.integers(0, 1 << bits, n, dtype=np.uint64)
            rhs = rng.integers(0, 1 << bits, n, dtype=np.uint64)
            a = BitColumn.from_ints(system, lhs, bits)
            b = BitColumn.from_ints(system, rhs, bits, like=a.planes[0])
            total = add(a, b)
            assert np.array_equal(
                total.to_ints(), (lhs + rhs) % (1 << bits)
            ), tier

            planes = [rng.integers(0, 2, n).astype(bool) for _ in range(6)]
            vectors = [system.from_bits(p) for p in planes]
            counts = popcount(vectors)
            assert np.array_equal(
                counts.to_ints(), np.sum(planes, axis=0).astype(np.uint64)
            ), tier
