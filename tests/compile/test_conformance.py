"""Exhaustive conformance of the MAJ/NOT operation compiler.

Three rings of evidence, inside out:

* **Every boolean function exists and is correct.**  All 16 two-input
  and all 256 three-input functions are synthesized from their truth
  tables (sum of products) and checked against the numpy oracle over
  *every* input combination -- packed one combination per bit lane, so
  one ``eval_rows`` call covers the whole truth table.
* **Structured expressions run on silicon.**  A catalog of hand-picked
  expressions (up to four inputs: shared subtrees, double negations,
  mux/maj nests, constants) executes on a real device through
  ``BitVector.compute`` over all input combinations.
* **Random deep expressions with >= 5 inputs.**  Hypothesis generates
  expression trees, anchored so at least five distinct variables
  survive simplification, and every example runs on-device against the
  oracle.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.bitvector import AmbitBitSystem
from repro.compile import (
    FALSE,
    TRUE,
    CompileError,
    Var,
    compile_expr,
    evaluate,
    maj,
    mux,
    parse_expr,
    variables,
)
from repro.dram.geometry import small_test_geometry

A, B, C, D = Var("a"), Var("b"), Var("c"), Var("d")


def truth_lanes(num_inputs):
    """Input arrays whose bit lanes enumerate every combination.

    Lane ``j`` of input ``i`` holds bit ``i`` of ``j``, so ``2 **
    num_inputs`` lanes cover the whole truth table in one evaluation.
    """
    combos = 1 << num_inputs
    return [
        np.array(
            [
                sum(
                    ((j >> i) & 1) << j
                    for j in range(combos)
                )
            ],
            dtype=np.uint64,
        )
        for i in range(num_inputs)
    ]


def sum_of_products(table, inputs):
    """An expression computing the boolean function given by ``table``."""
    expr = FALSE
    for combo, output in enumerate(table):
        if not output:
            continue
        term = TRUE
        for i, var in enumerate(inputs):
            term = term & (var if (combo >> i) & 1 else ~var)
        expr = expr | term
    return expr


class TestEveryBooleanFunction:
    """Exhaustive enumeration over the full function space."""

    @pytest.mark.parametrize("num_inputs", [2, 3])
    def test_all_functions_conform(self, num_inputs):
        inputs = (A, B, C)[:num_inputs]
        lanes = truth_lanes(num_inputs)
        combos = 1 << num_inputs
        mask = (1 << combos) - 1
        for function in range(1, mask):  # constants rejected separately
            table = [(function >> j) & 1 for j in range(combos)]
            expr = sum_of_products(table, inputs)
            if not variables(expr):
                continue  # simplified to a constant (shouldn't happen)
            cop = compile_expr(expr)
            env = dict(zip((v.name for v in inputs), lanes))
            want = evaluate(expr, env)
            got, _ = cop.eval_rows(
                [env[name] for name in cop.inputs]
            )
            assert int(got[0]) & mask == int(want[0]) & mask, (
                f"function {function:#x} over {num_inputs} inputs: "
                f"compiled {int(got[0]):#x}, oracle {int(want[0]):#x}"
            )

    def test_variable_free_expressions_are_rejected(self):
        with pytest.raises(CompileError):
            compile_expr(TRUE)

    def test_constant_folding_keeps_the_input_shape(self):
        # ``a & ~a`` folds to constant zero but keeps ``a`` as the
        # operand giving the destination rows their shape.
        cop = compile_expr(A & ~A)
        assert cop.inputs == ("a",)
        sample = np.array([0x5A5A], dtype=np.uint64)
        got, _ = cop.eval_rows([sample])
        assert int(got[0]) == 0


#: Structured catalog: sharing, negation pushdown, nests, constants.
CATALOG = [
    "a & b",
    "a | b",
    "a ^ b",
    "~(a & b)",
    "~(a | b)",
    "~(a ^ b)",
    "~a & ~b",
    "maj(a, b, c)",
    "mux(c, a, b)",
    "maj(a, ~b, c) ^ a",
    "(a & b) | (~a & c)",
    "(a ^ b) ^ (c ^ d)",
    "maj(a ^ b, b | c, mux(d, a, c))",
    "~maj(~a, ~b, ~c)",
    "(a & b) ^ (a & b) ^ d",  # CSE folds the xor pair away
    "mux(a, b, b)",  # select between identical arms
    "a & (b | 1)",  # constant collapses the OR
    "(a | b) & ~(c & d) ^ maj(a, c, d)",
]


@pytest.fixture(scope="module")
def system():
    geometry = small_test_geometry(rows=64, row_bytes=32)
    return AmbitBitSystem(geometry=geometry)


class TestCatalogOnDevice:
    """Every catalog expression, every input combination, on silicon."""

    @pytest.mark.parametrize("text", CATALOG)
    def test_exhaustive_on_device(self, system, text):
        expr = parse_expr(text)
        names = variables(expr)
        combos = 1 << len(names)
        nbits = system.device.row_bits
        repeats = -(-nbits // combos)  # tile the table across the row
        bits = {}
        for i, name in enumerate(names):
            lane = np.array(
                [(j >> i) & 1 for j in range(combos)], dtype=bool
            )
            bits[name] = np.tile(lane, repeats)[:nbits]
        vectors = {}
        template = None
        for name in names:
            vectors[name] = system.from_bits(bits[name], like=template)
            template = template if template is not None else vectors[name]
        out = vectors[names[0]].compute(expr, **vectors)
        want = evaluate(expr, bits)
        assert np.array_equal(out.to_bits(), want), text
        out.free()
        for vector in vectors.values():
            vector.free()


# ----------------------------------------------------------------------
# Hypothesis: random deep trees with at least five inputs, on-device.
# ----------------------------------------------------------------------
POOL = [Var(name) for name in "abcdefg"]

leaves = st.sampled_from(POOL)


def _combine(children):
    binary = st.tuples(children, children)
    ternary = st.tuples(children, children, children)
    return st.one_of(
        binary.map(lambda t: t[0] & t[1]),
        binary.map(lambda t: t[0] | t[1]),
        binary.map(lambda t: t[0] ^ t[1]),
        children.map(lambda e: ~e),
        ternary.map(lambda t: maj(*t)),
        ternary.map(lambda t: mux(*t)),
    )


trees = st.recursive(leaves, _combine, max_leaves=12)

#: Anchor guaranteeing five distinct variables survive any folding the
#: random tree triggers: xor with a five-input function never collapses.
ANCHOR = maj(POOL[0], POOL[1], POOL[2]) ^ (POOL[3] & POOL[4])


class TestRandomExpressionsOnDevice:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tree=trees, seed=st.integers(min_value=0, max_value=2**31))
    def test_matches_oracle(self, system, tree, seed):
        expr = tree ^ ANCHOR
        names = variables(expr)
        assert len(names) >= 5
        rng = np.random.default_rng(seed)
        nbits = system.device.row_bits
        bits = {
            name: rng.integers(0, 2, nbits).astype(bool) for name in names
        }
        vectors = {}
        template = None
        for name in names:
            vectors[name] = system.from_bits(bits[name], like=template)
            template = template if template is not None else vectors[name]
        out = vectors[names[0]].compute(expr, **vectors)
        want = evaluate(expr, bits)
        assert np.array_equal(out.to_bits(), want)
        out.free()
        for vector in vectors.values():
            vector.free()


class TestKernelsMatchNumpy:
    """Bit-serial arithmetic kernels against integer numpy oracles."""

    def test_add_sub_compare_select(self, system):
        from repro.compile.kernels import (
            BitColumn,
            add,
            compare_eq,
            compare_lt,
            select,
            sub,
        )

        rng = np.random.default_rng(11)
        n = system.device.row_bits
        bits = 6
        lhs = rng.integers(0, 1 << bits, n, dtype=np.uint64)
        rhs = rng.integers(0, 1 << bits, n, dtype=np.uint64)
        a = BitColumn.from_ints(system, lhs, bits)
        b = BitColumn.from_ints(system, rhs, bits, like=a.planes[0])

        total = add(a, b)
        assert np.array_equal(total.to_ints(), (lhs + rhs) % (1 << bits))
        diff = sub(a, b)
        assert np.array_equal(diff.to_ints(), (lhs - rhs) % (1 << bits))
        lt = compare_lt(a, b)
        assert np.array_equal(lt.to_bits(), lhs < rhs)
        eq = compare_eq(a, b)
        assert np.array_equal(eq.to_bits(), lhs == rhs)
        picked = select(lt, a, b)
        assert np.array_equal(
            picked.to_ints(), np.where(lhs < rhs, lhs, rhs)
        )
        for column in (total, diff, picked, a, b):
            column.free()
        lt.free()
        eq.free()

    def test_popcount(self, system):
        from repro.compile.kernels import popcount

        rng = np.random.default_rng(13)
        n = system.device.row_bits
        planes = [rng.integers(0, 2, n).astype(bool) for _ in range(5)]
        vectors = [system.from_bits(p) for p in planes]
        counts = popcount(vectors)
        assert counts.width == math.ceil(math.log2(len(planes) + 1))
        assert np.array_equal(
            counts.to_ints(), np.sum(planes, axis=0).astype(np.uint64)
        )
        counts.free()
        for vector in vectors:
            vector.free()
