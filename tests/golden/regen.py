"""Golden command-sequence definitions + regeneration entry point.

Each ``tests/golden/<op>.trace`` file is the exact
:mod:`repro.dram.trace_io` text of one bulk bitwise operation (Figure 8)
executed on the canonical tiny device at fixed addresses.  The tests in
``tests/obs/test_golden_traces.py`` assert byte-for-byte equality, so a
change to microprogram sequencing is a reviewable diff, never silent
drift.

After an *intentional* microprogram change, regenerate with::

    PYTHONPATH=src python -m tests.golden.regen

and commit the resulting diffs alongside the change that caused them.
"""

from __future__ import annotations

import pathlib

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.obs import CommandLog

GOLDEN_DIR = pathlib.Path(__file__).parent

#: The seven bulk bitwise operations with golden traces.
GOLDEN_OPS = (
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NOT,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
)

#: Fixed operand addresses: Di=0, Dj=1, Dk=3 in bank 0, subarray 0.
DST = RowLocation(0, 0, 3)
SRC1 = RowLocation(0, 0, 0)
SRC2 = RowLocation(0, 0, 1)


def golden_device() -> AmbitDevice:
    """The canonical device shape (identical to the ``tiny_geo`` fixture)."""
    return AmbitDevice(
        geometry=small_test_geometry(
            rows=32, row_bytes=64, banks=2, subarrays_per_bank=2
        )
    )


def golden_trace_text(op: BulkOp, device: AmbitDevice = None) -> str:
    """The trace text of one canonical execution of ``op``."""
    if device is None:
        device = golden_device()
    log = CommandLog(device)
    try:
        device.bbop_row(op, DST, SRC1, SRC2 if op.arity >= 2 else None)
        return log.text() + "\n"
    finally:
        log.detach()


def golden_path(op: BulkOp) -> pathlib.Path:
    return GOLDEN_DIR / f"{op.value}.trace"


def main() -> None:
    for op in GOLDEN_OPS:
        path = golden_path(op)
        path.write_text(golden_trace_text(op))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
