"""Golden command-sequence definitions + regeneration entry point.

Each ``tests/golden/<op>.trace`` file is the exact
:mod:`repro.dram.trace_io` text of one bulk bitwise operation (Figure 8)
executed on the canonical tiny device at fixed addresses.  The tests in
``tests/obs/test_golden_traces.py`` assert byte-for-byte equality, so a
change to microprogram sequencing is a reviewable diff, never silent
drift.

After an *intentional* microprogram change, regenerate with::

    PYTHONPATH=src python -m tests.golden.regen

and commit the resulting diffs alongside the change that caused them.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.obs import CommandLog

GOLDEN_DIR = pathlib.Path(__file__).parent

#: The seven bulk bitwise operations with golden traces.
GOLDEN_OPS = (
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NOT,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
)

#: Fixed operand addresses: Di=0, Dj=1, Dk=3 in bank 0, subarray 0.
DST = RowLocation(0, 0, 3)
SRC1 = RowLocation(0, 0, 0)
SRC2 = RowLocation(0, 0, 1)


def golden_device() -> AmbitDevice:
    """The canonical device shape (identical to the ``tiny_geo`` fixture)."""
    return AmbitDevice(
        geometry=small_test_geometry(
            rows=32, row_bytes=64, banks=2, subarrays_per_bank=2
        )
    )


def golden_trace_text(op: BulkOp, device: AmbitDevice = None) -> str:
    """The trace text of one canonical execution of ``op``."""
    if device is None:
        device = golden_device()
    log = CommandLog(device)
    try:
        device.bbop_row(op, DST, SRC1, SRC2 if op.arity >= 2 else None)
        return log.text() + "\n"
    finally:
        log.detach()


def golden_path(op: BulkOp) -> pathlib.Path:
    return GOLDEN_DIR / f"{op.value}.trace"


# ----------------------------------------------------------------------
# Compiled-operation traces (repro.compile)
# ----------------------------------------------------------------------
#: Third operand for three-input compiled expressions.
SRC3 = RowLocation(0, 0, 2)

#: Canonical compiled expressions with pinned command streams: the two
#: ops whose synthesized programs must match the hand-written native
#: ones (the bench gate prices exactly these), plus a mux and the
#: full-adder carry the bit-serial kernels are built from.
COMPILED_CASES = (
    ("compiled_and", "a & b"),
    ("compiled_xor", "a ^ b"),
    ("compiled_mux", "mux(c, a, b)"),
    ("compiled_carry", "maj(a, b, c)"),
)

#: Compiled scratch rows start here (clear of the fixed operands).
COMPILED_TEMP_BASE = 4


def compiled_trace_text(name: str, expr_text: str, device=None) -> str:
    """The trace text of one canonical compiled-op execution."""
    from repro.compile import compile_expr, parse_expr

    cop = compile_expr(parse_expr(expr_text), name=name)
    if device is None:
        device = golden_device()
    sources = list((SRC1, SRC2, SRC3)[: cop.arity])
    temps = [
        RowLocation(0, 0, COMPILED_TEMP_BASE + t)
        for t in range(cop.num_temps)
    ]
    log = CommandLog(device)
    try:
        device.bbop_compiled_row(cop, DST, sources, temps)
        return log.text() + "\n"
    finally:
        log.detach()


def compiled_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.trace"


# ----------------------------------------------------------------------
# Recovery-ladder traces (repro.faults)
# ----------------------------------------------------------------------
#: One scenario per recovery rung: transient-TRA retry, stuck-row
#: spare remap, and dead-DCC reroute.  Each trace pins the *entire*
#: command stream of one faulty operation -- the failed attempt, the
#: detection probes, and the recovered re-execution.
RECOVERY_SCENARIOS = ("retry", "remap", "dcc")

#: Recovery working set inside the golden device's 14 data rows.
RECOVERY_SCRATCH = (8, 9)
RECOVERY_SPARES = (10, 11, 12, 13)


def recovery_trace_text(scenario: str) -> str:
    """The command stream of one canonical fault-recovery episode.

    Setup (row images, scratch, spares, fault arming) happens before
    the log attaches, so the trace starts at the faulty operation and
    ends at its verified recovery.  The expected ladder rung is
    asserted, so a regen that silently drifts to a different recovery
    action fails here instead of pinning the wrong stream.
    """
    from repro.faults.recover import FaultTolerantSession

    device = golden_device()
    session = FaultTolerantSession(device)
    session.set_scratch(0, 0, RECOVERY_SCRATCH)
    session.add_spares(0, 0, RECOVERY_SPARES)
    words = device.geometry.subarray.words_per_row
    src1 = np.full(words, np.uint64(0x0F0F0F0F0F0F0F0F))
    src2 = np.full(words, np.uint64(0x00FF00FF00FF00FF))
    session.write_row(SRC1, src1)
    session.write_row(SRC2, src2)
    session.write_row(DST, np.zeros(words, dtype=np.uint64))
    subarray = device.chip.bank(0).subarray(0)

    if scenario == "retry":
        # A one-shot variation glitch: the next TRA senses all-flipped.
        mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))

        def hook(sensed, _sub=subarray, _mask=mask):
            _sub.tra_fault_hook = None
            return _mask

        subarray.tra_fault_hook = hook
        expected_action = "retried"
    elif scenario == "remap":
        # Source row 0 pinned to the complement of its intended image.
        subarray.inject_stuck_row(SRC1.address, ~src1)
        expected_action = "remapped"
    elif scenario == "dcc":
        # DCC0's n-wordline fails open; the route must flip to DCC1.
        subarray.inject_dcc_fault(device.amap.row_dcc(0))
        expected_action = "rerouted"
    else:
        raise ValueError(f"unknown recovery scenario {scenario!r}")

    log = CommandLog(device)
    try:
        if scenario == "dcc":
            session.bbop_row(BulkOp.NOT, DST, SRC1)
            reference = ~src1
        else:
            session.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
            reference = src1 & src2
        assert np.array_equal(device.read_row(DST), reference), (
            f"recovery scenario {scenario!r} did not restore the result"
        )
        actions = {record.action for record in session.log}
        assert expected_action in actions, (
            f"scenario {scenario!r} expected a {expected_action!r} "
            f"recovery, saw {sorted(actions)}"
        )
        assert session.unrecovered_count == 0
        return log.text() + "\n"
    finally:
        log.detach()


def recovery_path(scenario: str) -> pathlib.Path:
    return GOLDEN_DIR / f"recovery_{scenario}.trace"


def main() -> None:
    for op in GOLDEN_OPS:
        path = golden_path(op)
        path.write_text(golden_trace_text(op))
        print(f"wrote {path}")
    for name, expr_text in COMPILED_CASES:
        path = compiled_path(name)
        path.write_text(compiled_trace_text(name, expr_text))
        print(f"wrote {path}")
    for scenario in RECOVERY_SCENARIOS:
        path = recovery_path(scenario)
        path.write_text(recovery_trace_text(scenario))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
