"""The paper's un-shown claim: even naive Ambit beats existing systems.

Section 5.3: "While even this naive approach offers better throughput
and energy efficiency than existing systems (not shown here), we propose
a simple optimization..."  We can show it.
"""

import pytest

from repro.core.microprograms import BulkOp
from repro.dram.timing import ddr3_1600
from repro.energy import DEFAULT_ENERGY, ddr_op_energy_nj_per_kb
from repro.perf.systems import (
    FIGURE9_OPS,
    AmbitSystem,
    gtx745,
    hmc20,
    skylake,
)


@pytest.fixture
def naive_ambit():
    return AmbitSystem(
        "Ambit(naive)",
        timing=ddr3_1600(),
        banks=8,
        row_bytes=8192,
        split_decoder=False,
    )


class TestNaiveAmbitStillWins:
    def test_beats_cpu_and_gpu_on_every_op(self, naive_ambit):
        for op in FIGURE9_OPS:
            t = naive_ambit.throughput_gops(op)
            assert t > skylake().throughput_gops(op)
            assert t > gtx745().throughput_gops(op)

    def test_beats_hmc_on_every_op(self, naive_ambit):
        for op in FIGURE9_OPS:
            assert naive_ambit.throughput_gops(op) > hmc20().throughput_gops(op)

    def test_but_loses_to_optimised_ambit(self, naive_ambit):
        optimised = AmbitSystem(
            "Ambit", timing=ddr3_1600(), banks=8, row_bytes=8192
        )
        for op in FIGURE9_OPS:
            assert naive_ambit.throughput_gops(op) < optimised.throughput_gops(op)

    def test_naive_energy_still_far_below_ddr(self):
        # Energy is activation-count arithmetic, unchanged by the AAP
        # overlap, so even the naive design keeps the Table 3 wins.
        params = DEFAULT_ENERGY
        and_naive_per_kb = (
            (8 * params.act_nj + params.act_nj * 0.44 + 4 * params.pre_nj) / 8
        )
        assert ddr_op_energy_nj_per_kb(BulkOp.AND) / and_naive_per_kb > 25
