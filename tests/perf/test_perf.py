"""Figure 9 throughput models and the analytical/functional cross-check."""

import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import small_test_geometry
from repro.errors import ConfigError
from repro.perf.systems import (
    FIGURE9_OPS,
    AmbitSystem,
    BandwidthBoundSystem,
    ambit,
    ambit_3d,
    gtx745,
    hmc20,
    skylake,
)
from repro.perf.throughput import (
    figure9_experiment,
    format_figure9,
    measure_ambit_functional,
)


class TestBandwidthBoundSystems:
    def test_not_has_higher_throughput_than_and(self):
        # not moves 2 bytes per output byte; and moves 3.
        sky = skylake()
        assert sky.throughput_gops(BulkOp.NOT) > sky.throughput_gops(BulkOp.AND)
        assert sky.throughput_gops(BulkOp.NOT) == pytest.approx(
            sky.throughput_gops(BulkOp.AND) * 1.5
        )

    def test_two_operand_ops_uniform(self):
        sky = skylake()
        assert sky.throughput_gops(BulkOp.XOR) == pytest.approx(
            sky.throughput_gops(BulkOp.NAND)
        )

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigError):
            BandwidthBoundSystem("x", peak_gbps=10, efficiency=1.5)

    def test_hmc_beats_cpu_and_gpu(self):
        assert hmc20().effective_gbps > skylake().effective_gbps
        assert hmc20().effective_gbps > gtx745().effective_gbps


class TestAmbitSystem:
    def test_throughput_scales_with_banks(self):
        assert ambit(banks=16).throughput_gops(BulkOp.AND) == pytest.approx(
            2 * ambit(banks=8).throughput_gops(BulkOp.AND)
        )

    def test_and_latency_matches_timing(self):
        # 4 overlapped AAPs at 49 ns on DDR3-1600.
        assert ambit().op_latency_ns(BulkOp.AND) == pytest.approx(196.0)

    def test_split_decoder_ablation_slower(self):
        naive = AmbitSystem(
            "naive", timing=ambit().timing, banks=8, row_bytes=8192,
            split_decoder=False,
        )
        assert naive.throughput_gops(BulkOp.AND) < ambit().throughput_gops(
            BulkOp.AND
        )

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            AmbitSystem("x", timing=ambit().timing, banks=0, row_bytes=8192)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9_experiment()

    def test_ordering_matches_paper(self, result):
        # Skylake < GTX745 < HMC < Ambit < Ambit-3D on mean throughput.
        means = [result.mean(n) for n in
                 ("Skylake", "GTX745", "HMC 2.0", "Ambit", "Ambit-3D")]
        assert all(a < b for a, b in zip(means, means[1:]))

    def test_ambit_vs_skylake_in_paper_regime(self, result):
        # Paper: 44.9X; accept the band the calibration note documents.
        assert 35.0 <= result.speedup("Ambit", "Skylake") <= 60.0

    def test_ambit_vs_hmc(self, result):
        # Paper: 2.4X.
        assert 2.0 <= result.speedup("Ambit", "HMC 2.0") <= 3.5

    def test_ambit3d_vs_hmc(self, result):
        # Paper: 9.7X.
        assert 8.0 <= result.speedup("Ambit-3D", "HMC 2.0") <= 13.0

    def test_hmc_vs_skylake_matches_paper_closely(self, result):
        # This ratio pins the calibration: 18.5X.
        assert result.speedup("HMC 2.0", "Skylake") == pytest.approx(18.5, rel=0.05)

    def test_hmc_vs_gpu_matches_paper_closely(self, result):
        assert result.speedup("HMC 2.0", "GTX745") == pytest.approx(13.1, rel=0.05)

    def test_all_ops_covered(self, result):
        for name in result.systems:
            assert set(result.throughput[name]) == set(FIGURE9_OPS)

    def test_format(self, result):
        text = format_figure9(result)
        assert "Ambit-3D" in text and "paper" in text


class TestFunctionalCrossCheck:
    @pytest.mark.parametrize("op", [BulkOp.AND, BulkOp.NOT, BulkOp.XOR])
    def test_functional_device_matches_analytical_model(self, op):
        geo = small_test_geometry(
            rows=24, row_bytes=8192, banks=4, subarrays_per_bank=1
        )
        device = AmbitDevice(geometry=geo)
        measured = measure_ambit_functional(device, op, rows_per_bank=2)
        model = AmbitSystem(
            "check", timing=device.timing, banks=4, row_bytes=8192
        )
        assert measured == pytest.approx(model.throughput_gops(op), rel=1e-6)
