"""Memory-bus vs device integration (the Section 5.4 argument)."""

import pytest

from repro.errors import ConfigError
from repro.perf.integration import (
    DeviceIntegration,
    MemoryBusIntegration,
    integration_comparison,
)

ROW = 8192
OP_NS = 196.0  # bulk AND on one row pair (DDR3-1600)


class TestOverheads:
    def test_bus_overhead_constant(self):
        bus = MemoryBusIntegration()
        assert bus.overhead_ns(3 * ROW, ROW) == bus.overhead_ns(300 * ROW, ROW)

    def test_device_pays_dma_for_nonresident_data(self):
        dev = DeviceIntegration()
        resident = dev.overhead_ns(3 * ROW, ROW, operands_resident=True,
                                   result_consumed_by_host=False)
        cold = dev.overhead_ns(3 * ROW, ROW, operands_resident=False,
                               result_consumed_by_host=False)
        assert cold > resident
        assert cold - resident == pytest.approx(3 * ROW / dev.link_gbps)

    def test_device_pays_result_readback(self):
        dev = DeviceIntegration()
        kept = dev.overhead_ns(0, ROW, operands_resident=True,
                               result_consumed_by_host=False)
        read = dev.overhead_ns(0, ROW, operands_resident=True,
                               result_consumed_by_host=True)
        assert read - kept == pytest.approx(ROW / dev.link_gbps)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            DeviceIntegration(link_gbps=0)


class TestComparison:
    def test_memory_bus_wins_cold_data(self):
        result = integration_comparison(
            operand_bytes=3 * ROW,
            result_bytes=ROW,
            operations=100,
            op_latency_ns=OP_NS,
            operands_resident=False,
        )
        # Data movement over the link dwarfs everything: the paper's
        # "no need to copy data" benefit.
        assert result["device_penalty"] > 5.0

    def test_memory_bus_wins_even_resident(self):
        result = integration_comparison(
            operand_bytes=3 * ROW,
            result_bytes=ROW,
            operations=100,
            op_latency_ns=OP_NS,
            operands_resident=True,
            result_consumed_by_host=False,
        )
        # Per-op driver round trips (~2 us) vs bbop issue (~30 ns):
        # CPU-instruction triggering still wins by ~10X.
        assert result["device_penalty"] > 3.0

    def test_penalty_shrinks_with_resident_batching(self):
        cold = integration_comparison(
            3 * ROW, ROW, 10, OP_NS, operands_resident=False
        )["device_penalty"]
        resident = integration_comparison(
            3 * ROW, ROW, 10, OP_NS, operands_resident=True,
            result_consumed_by_host=False,
        )["device_penalty"]
        assert resident < cold

    def test_operation_count_validated(self):
        with pytest.raises(ConfigError):
            integration_comparison(ROW, ROW, 0, OP_NS)

    def test_totals_scale_linearly(self):
        one = integration_comparison(3 * ROW, ROW, 1, OP_NS)
        ten = integration_comparison(3 * ROW, ROW, 10, OP_NS)
        assert ten["memory_bus_ns"] == pytest.approx(10 * one["memory_bus_ns"])
        assert ten["device_ns"] == pytest.approx(10 * one["device_ns"])
