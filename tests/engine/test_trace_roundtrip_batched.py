"""Batched-engine runs round-trip through the command-trace format.

The fused path of :class:`~repro.engine.batch.BatchEngine` computes a
whole (bank, subarray) group in one numpy operation but still charges
the *exact* command schedule to the chip trace.  That claim is only
honest if the trace is replayable: ``dump_trace_with_data`` of a fused
multi-row batch, parsed and replayed on a fresh device, must reproduce
every cell bit-for-bit -- including the destination rows the fused
kernel wrote without ever issuing per-word WRITEs itself.
"""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.dram.trace_io import dump_trace_with_data, parse_trace, replay_trace

GEO = small_test_geometry(rows=32, row_bytes=64, banks=4, subarrays_per_bank=2)
DATA_ROWS = GEO.subarray.data_rows
WORDS = GEO.subarray.words_per_row

SPREAD = {(0, 0): 3, (0, 1): 2, (1, 0): 2, (3, 1): 3}


def _make_device(seed=None):
    device = AmbitDevice(geometry=GEO)
    if seed is not None:
        rng = np.random.default_rng(seed)
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                for addr in range(DATA_ROWS):
                    device.write_row(
                        RowLocation(bank, sub, addr),
                        rng.integers(0, 2**63, size=WORDS, dtype=np.uint64),
                    )
    return device


def _rows(arity):
    dst, src1, src2, src3 = [], [], [], []
    for (bank, sub), count in SPREAD.items():
        for j in range(count):
            dst.append(RowLocation(bank, sub, 3 * j))
            src1.append(RowLocation(bank, sub, 3 * j + 1))
            src2.append(RowLocation(bank, sub, 3 * j + 2))
            # Hazard-free third operand so MAJ stays on the fused path.
            src3.append(RowLocation(bank, sub, 9 + j))
    return (
        dst,
        src1,
        src2 if arity >= 2 else None,
        src3 if arity >= 3 else None,
    )


def _data_state(device):
    return {
        (b, s, r): tuple(device.read_row(RowLocation(b, s, r)).tolist())
        for b in range(GEO.banks)
        for s in range(GEO.subarrays_per_bank)
        for r in range(DATA_ROWS)
    }


@pytest.mark.parametrize("op", tuple(BulkOp), ids=lambda op: op.value)
def test_fused_batch_trace_replays_bit_exact(op):
    original = _make_device(seed=13)
    baseline_state = _data_state(original)
    start = len(original.chip.trace)

    dst, src1, src2, src3 = _rows(op.arity)
    report = original.engine.run_rows(op, dst, src1, src2, src3)
    assert report.fused_rows > 0, "batch must exercise the fused path"

    text = dump_trace_with_data(original.chip.trace.entries[start:])

    # Replay onto a fresh device holding the same pre-batch data.
    replayed = _make_device(seed=13)
    assert _data_state(replayed) == baseline_state
    replay_trace(replayed.chip, parse_trace(text))

    assert _data_state(replayed) == _data_state(original)
    # The replay's own trace dumps back to the identical text.
    assert (
        dump_trace_with_data(replayed.chip.trace.entries[start:]) == text
    )


def test_consecutive_batches_one_dump():
    original = _make_device(seed=29)
    start = len(original.chip.trace)
    for op in (BulkOp.AND, BulkOp.XOR, BulkOp.MAJ):
        dst, src1, src2, src3 = _rows(op.arity)
        original.engine.run_rows(op, dst, src1, src2, src3)

    text = dump_trace_with_data(original.chip.trace.entries[start:])
    replayed = _make_device(seed=29)
    replay_trace(replayed.chip, parse_trace(text))
    assert _data_state(replayed) == _data_state(original)
