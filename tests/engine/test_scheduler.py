"""Bank-interleaved issue order and the parallelism report."""

import pytest

from repro.engine.scheduler import (
    BatchScheduler,
    CommandGroup,
    ParallelismReport,
)


def g(bank, dur=10.0, tag=None):
    return CommandGroup(bank=bank, duration_ns=dur, payload=tag)


class TestOrder:
    def test_round_robin_across_banks(self):
        groups = [g(0, tag="a0"), g(0, tag="a1"), g(1, tag="b0"), g(1, tag="b1")]
        order = BatchScheduler().order(groups)
        assert [x.payload for x in order] == ["a0", "b0", "a1", "b1"]

    def test_per_bank_fifo_is_preserved(self):
        groups = [g(b, tag=f"{b}.{i}") for i in range(3) for b in (2, 0, 1)]
        order = BatchScheduler().order(groups)
        for bank in (0, 1, 2):
            tags = [x.payload for x in order if x.bank == bank]
            assert tags == [f"{bank}.{i}" for i in range(3)]

    def test_banks_take_turns_in_first_appearance_order(self):
        groups = [g(3, tag="x"), g(1, tag="y"), g(3, tag="z")]
        order = BatchScheduler().order(groups)
        assert [x.payload for x in order] == ["x", "y", "z"]

    def test_uneven_queues_drain_completely(self):
        groups = [g(0, tag=f"a{i}") for i in range(4)] + [g(1, tag="b0")]
        order = BatchScheduler().order(groups)
        assert [x.payload for x in order] == ["a0", "b0", "a1", "a2", "a3"]
        assert sorted(x.payload for x in order) == sorted(
            x.payload for x in groups
        )

    def test_empty_and_single(self):
        assert BatchScheduler().order([]) == []
        only = [g(5, tag="solo")]
        assert BatchScheduler().order(only) == only


class TestReport:
    def test_perfect_overlap(self):
        groups = [g(b, dur=100.0) for b in range(8)]
        report = BatchScheduler().report(groups)
        assert report.serialized_ns == pytest.approx(800.0)
        assert report.makespan_ns == pytest.approx(100.0)
        assert report.banks == 8
        assert report.parallelism == pytest.approx(8.0)

    def test_makespan_is_busiest_bank(self):
        groups = [g(0, 50.0), g(0, 50.0), g(1, 30.0)]
        report = BatchScheduler().report(groups)
        assert report.serialized_ns == pytest.approx(130.0)
        assert report.makespan_ns == pytest.approx(100.0)
        assert report.bank_busy_ns == {
            0: pytest.approx(100.0),
            1: pytest.approx(30.0),
        }
        assert report.parallelism == pytest.approx(1.3)

    def test_empty_batch_parallelism_is_one(self):
        report = BatchScheduler().report([])
        assert report.serialized_ns == 0.0
        assert report.makespan_ns == 0.0
        assert report.banks == 0
        assert report.parallelism == 1.0

    def test_format_mentions_banks_and_ratio(self):
        report = ParallelismReport(
            serialized_ns=400.0, makespan_ns=100.0,
            bank_busy_ns={0: 100.0, 1: 100.0, 2: 100.0, 3: 100.0},
        )
        text = report.format()
        assert "4 bank(s)" in text and "4.00x" in text
