"""The microprogram plan cache: compile once, reuse everywhere."""

import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp, compile_op
from repro.dram.commands import Opcode
from repro.dram.geometry import small_test_geometry
from repro.engine.plan import PlanCache
from repro.errors import AddressError

GOLDEN_OPS = (
    BulkOp.NOT,
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
)


@pytest.fixture
def device():
    return AmbitDevice(geometry=small_test_geometry())


class TestCaching:
    def test_hit_returns_same_plan(self, device):
        cache = device.controller.plan_cache
        first = cache.get(BulkOp.AND, 3, 0, 1)
        second = cache.get(BulkOp.AND, 3, 0, 1)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_addresses_compile_separately(self, device):
        cache = device.controller.plan_cache
        cache.get(BulkOp.AND, 3, 0, 1)
        cache.get(BulkOp.AND, 4, 0, 1)
        assert cache.misses == 2 and len(cache) == 2

    def test_plan_matches_direct_compilation(self, device):
        controller = device.controller
        plan = controller.plan_cache.get(BulkOp.XOR, 3, 0, 1)
        program = compile_op(controller.amap, BulkOp.XOR, 3, 0, 1)
        assert plan.program.primitives == program.primitives
        assert plan.total_ns == pytest.approx(
            sum(
                p.latency_ns(
                    controller.timing, controller.amap, controller.split_decoder
                )
                for p in program.primitives
            )
        )
        assert plan.num_aap == program.num_aap
        assert plan.num_ap == program.num_ap
        assert plan.num_commands == 3 * plan.num_aap + 2 * plan.num_ap

    def test_invalid_operands_still_raise(self, device):
        cache = device.controller.plan_cache
        with pytest.raises(AddressError):
            cache.get(BulkOp.NOT, 3, 0, 1)  # NOT takes one source
        with pytest.raises(AddressError):
            cache.get(BulkOp.MAJ, 3, 0, None, None)


class TestControllerIntegration:
    def test_bbop_populates_and_reuses_cache(self, device):
        cache = device.controller.plan_cache
        device.controller.bbop(BulkOp.AND, 0, 0, dk=3, di=0, dj=1)
        assert cache.misses == 1
        device.controller.bbop(BulkOp.AND, 1, 1, dk=3, di=0, dj=1)
        assert cache.hits == 1  # other bank, same addresses: cache hit

    @pytest.mark.parametrize("op", GOLDEN_OPS)
    def test_op_latency_ns_cached(self, device, op):
        controller = device.controller
        cache = controller.plan_cache
        first = controller.op_latency_ns(op)
        misses = cache.misses
        assert controller.op_latency_ns(op) == first
        assert cache.misses == misses  # second query is a pure hit

    def test_reset_stats_keeps_plans_but_zeroes_counters(self, device):
        controller = device.controller
        controller.bbop(BulkOp.XOR, 0, 0, dk=3, di=0, dj=1)
        controller.bbop(BulkOp.XOR, 0, 0, dk=3, di=0, dj=1)
        cache = controller.plan_cache
        assert len(cache) == 1 and cache.hits == 1
        controller.reset_stats()
        assert len(cache) == 1  # compiled plans survive
        assert cache.hits == 0 and cache.misses == 0
        controller.bbop(BulkOp.XOR, 0, 0, dk=3, di=0, dj=1)
        assert cache.hits == 1 and cache.misses == 0  # still warm


class TestIssuedCommands:
    @pytest.mark.parametrize("op", GOLDEN_OPS + (BulkOp.COPY, BulkOp.MAJ))
    def test_schedule_matches_executed_trace(self, device, op):
        """The cached flat schedule is byte-identical to real execution."""
        from repro.dram.chip import RowLocation

        controller = device.controller
        dst = RowLocation(0, 1, 3)
        device.bbop_row(
            op,
            dst,
            RowLocation(0, 1, 0),
            RowLocation(0, 1, 1) if op.arity >= 2 else None,
            RowLocation(0, 1, 2) if op.arity == 3 else None,
        )
        executed = list(device.chip.trace)
        plan = controller.plan_cache.get(
            op, 3, 0,
            1 if op.arity >= 2 else None,
            2 if op.arity == 3 else None,
        )
        synthesized = controller.plan_cache.issued_commands(plan, 0, 1)
        assert len(synthesized) == len(executed) == plan.num_commands
        for real, synth in zip(executed, synthesized):
            assert synth.command == real.command
            assert synth.wordlines_raised == real.wordlines_raised
            assert synth.onto_open_row == real.onto_open_row
            assert synth.write_value is None

    def test_schedule_is_cached_per_subarray(self, device):
        cache = device.controller.plan_cache
        plan = cache.get(BulkOp.AND, 3, 0, 1)
        a = cache.issued_commands(plan, 0, 0)
        assert cache.issued_commands(plan, 0, 0) is a
        b = cache.issued_commands(plan, 1, 0)
        assert b is not a
        assert all(ic.command.bank == 1 for ic in b)

    def test_tra_wordline_counts(self, device):
        """B12 raises three wordlines; the schedule must record it."""
        cache = device.controller.plan_cache
        amap = device.amap
        plan = cache.get(BulkOp.AND, 3, 0, 1)
        acts = [
            ic
            for ic in cache.issued_commands(plan, 0, 0)
            if ic.command.opcode is Opcode.ACTIVATE
        ]
        tra = [ic for ic in acts if ic.command.row == amap.b(12)]
        assert tra and all(ic.wordlines_raised == 3 for ic in tra)


class TestLruBound:
    def test_unbounded_by_default(self, device):
        cache = device.controller.plan_cache
        assert cache.max_plans is None
        for dk in range(3, 14):
            cache.get(BulkOp.AND, dk, 0, 1)
        assert len(cache) == 11 and cache.evictions == 0

    def test_bound_evicts_least_recently_used(self, device):
        cache = device.controller.plan_cache
        cache.max_plans = 2
        a = cache.get(BulkOp.AND, 3, 0, 1)
        cache.get(BulkOp.AND, 4, 0, 1)
        cache.get(BulkOp.AND, 3, 0, 1)      # touch a: now 4 is LRU
        cache.get(BulkOp.AND, 5, 0, 1)      # evicts 4
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.get(BulkOp.AND, 3, 0, 1) is a          # still a hit
        misses = cache.misses
        cache.get(BulkOp.AND, 4, 0, 1)      # recompiles
        assert cache.misses == misses + 1

    def test_setting_bound_trims_immediately(self, device):
        cache = device.controller.plan_cache
        for dk in range(3, 11):
            cache.get(BulkOp.AND, dk, 0, 1)
        cache.max_plans = 3
        assert len(cache) == 3 and cache.evictions == 5
        # The survivors are the most recently used addresses.
        hits = cache.hits
        for dk in (8, 9, 10):
            cache.get(BulkOp.AND, dk, 0, 1)
        assert cache.hits == hits + 3

    def test_eviction_drops_command_schedules(self, device):
        cache = device.controller.plan_cache
        plan = cache.get(BulkOp.AND, 3, 0, 1)
        cache.issued_commands(plan, 0, 0)
        assert any(k[0] == plan.key for k in cache._commands)
        cache.max_plans = 1
        cache.get(BulkOp.AND, 4, 0, 1)      # evicts plan for dk=3
        assert not any(k[0] == plan.key for k in cache._commands)

    def test_eviction_metric_counts(self, device):
        cache = device.controller.plan_cache
        cache.max_plans = 1
        cache.get(BulkOp.AND, 3, 0, 1)
        cache.get(BulkOp.AND, 4, 0, 1)
        family = device.metrics.get("ambit_plan_cache_evictions_total")
        assert family is not None and family.value == 1

    def test_invalid_bound_rejected(self, device):
        with pytest.raises(ValueError):
            device.controller.plan_cache.max_plans = 0
