"""The batch engine is bit-exact against the per-row command path.

The acceptance property of the engine: for every bulk operation, for
random inputs, row counts, and address layouts, running a batch through
:meth:`repro.engine.batch.BatchEngine.run_rows` leaves the device in a
state indistinguishable from walking the same rows one at a time through
:meth:`repro.core.device.AmbitDevice.bbop_row` -- same cell contents,
same accounted time and statistics, same per-bank command sequence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.engine.batch import apply_bulk_op
from repro.errors import AddressError

ALL_OPS = tuple(BulkOp)
LOGIC_OPS = tuple(op for op in BulkOp if op not in (BulkOp.COPY, BulkOp.MAJ))

GEO = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)
DATA_ROWS = GEO.subarray.data_rows
WORDS = GEO.subarray.words_per_row


def _fill(device, rng):
    """Seed every data row of every subarray with the same random bits."""
    for bank in range(GEO.banks):
        for sub in range(GEO.subarrays_per_bank):
            for addr in range(DATA_ROWS):
                device.write_row(
                    RowLocation(bank, sub, addr),
                    rng.integers(0, 2**63, size=WORDS, dtype=np.uint64),
                )


def _twin_devices(seed):
    """Two devices with identical geometry and identical cell contents."""
    slow = AmbitDevice(geometry=GEO)
    fast = AmbitDevice(geometry=GEO)
    _fill(slow, np.random.default_rng(seed))
    _fill(fast, np.random.default_rng(seed))
    return slow, fast


def _run_per_row(device, op, dst, src1, src2=None, src3=None):
    for i in range(len(dst)):
        device.bbop_row(
            op,
            dst[i],
            src1[i],
            None if src2 is None else src2[i],
            None if src3 is None else src3[i],
        )


def _subarray_traces(device):
    """Per-(bank, subarray) command sequences.

    How groups interleave is scheduler policy (banks are independent and
    the engine may batch a subarray's rows together); within one
    subarray's stream the commands must match the per-row walk exactly.
    """
    per_sub = {}
    for ic in device.chip.trace:
        key = (ic.command.bank, ic.command.subarray)
        per_sub.setdefault(key, []).append(
            (
                ic.command.opcode,
                ic.command.row,
                ic.wordlines_raised,
                ic.onto_open_row,
            )
        )
    return per_sub


def _assert_equivalent(slow, fast):
    """Cells, statistics, clock, and per-bank traces all match."""
    for bank in range(GEO.banks):
        for sub in range(GEO.subarrays_per_bank):
            for addr in range(DATA_ROWS):
                loc = RowLocation(bank, sub, addr)
                np.testing.assert_array_equal(
                    slow.read_row(loc),
                    fast.read_row(loc),
                    err_msg=f"cells diverge at {loc}",
                )
    assert fast.controller.stats.aap_count == slow.controller.stats.aap_count
    assert fast.controller.stats.ap_count == slow.controller.stats.ap_count
    assert dict(fast.controller.stats.ops) == dict(slow.controller.stats.ops)
    assert fast.busy_ns == pytest.approx(slow.busy_ns)
    assert fast.elapsed_ns == pytest.approx(slow.elapsed_ns)
    assert dict(fast.controller.stats.bank_busy_ns) == pytest.approx(
        dict(slow.controller.stats.bank_busy_ns)
    )
    assert fast.chip.clock_ns == pytest.approx(slow.chip.clock_ns)
    assert _subarray_traces(fast) == _subarray_traces(slow)


def _layout(op, draw_rows):
    """Turn drawn (bank, sub, k) triples into distinct-dst operand lists."""
    dst, src1, src2, src3 = [], [], [], []
    used = set()
    for bank, sub, k in draw_rows:
        d = 3 + (k % (DATA_ROWS - 3))
        if (bank, sub, d) in used:
            continue  # distinct destinations: keep the batch hazard-free
        used.add((bank, sub, d))
        dst.append(RowLocation(bank, sub, d))
        src1.append(RowLocation(bank, sub, 0))
        src2.append(RowLocation(bank, sub, 1))
        src3.append(RowLocation(bank, sub, 2))
    return (
        dst,
        src1,
        src2 if op.arity >= 2 else None,
        src3 if op.arity == 3 else None,
    )


row_triples = st.lists(
    st.tuples(
        st.integers(0, GEO.banks - 1),
        st.integers(0, GEO.subarrays_per_bank - 1),
        st.integers(0, DATA_ROWS - 4),
    ),
    min_size=1,
    max_size=12,
)


class TestBitExactness:
    """run_rows == per-row bbop_row, for every op, property-tested."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(rows=row_triples, seed=st.integers(0, 2**31 - 1))
    @pytest.mark.parametrize("op", ALL_OPS, ids=[op.value for op in ALL_OPS])
    def test_fused_matches_per_row(self, op, rows, seed):
        slow, fast = _twin_devices(seed)
        dst, src1, src2, src3 = _layout(op, rows)
        _run_per_row(slow, op, dst, src1, src2, src3)
        report = fast.engine.run_rows(op, dst, src1, src2, src3)
        assert report.rows == len(dst)
        assert report.fused_rows == len(dst)  # hazard-free: all fused
        assert report.fallback_rows == 0
        _assert_equivalent(slow, fast)

    @pytest.mark.parametrize("op", ALL_OPS, ids=[op.value for op in ALL_OPS])
    def test_functional_truth(self, op):
        """apply_bulk_op agrees with the command-level walk row by row."""
        slow, fast = _twin_devices(seed=7)
        dst = [RowLocation(0, 0, 5)]
        src1 = [RowLocation(0, 0, 0)]
        src2 = [RowLocation(0, 0, 1)] if op.arity >= 2 else None
        src3 = [RowLocation(0, 0, 2)] if op.arity == 3 else None
        a = slow.read_row(src1[0])
        b = slow.read_row(src2[0]) if src2 else None
        c = slow.read_row(src3[0]) if src3 else None
        expected = apply_bulk_op(op, a, b, c)
        _run_per_row(slow, op, dst, src1, src2, src3)
        fast.engine.run_rows(op, dst, src1, src2, src3)
        np.testing.assert_array_equal(slow.read_row(dst[0]), expected)
        np.testing.assert_array_equal(fast.read_row(dst[0]), expected)


class TestFallbacks:
    def test_tracer_forces_per_row_path(self):
        """With a tracer attached nothing fuses, and results still match."""
        slow, fast = _twin_devices(seed=11)
        fast.attach_tracer()
        dst, src1, src2, _ = _layout(BulkOp.AND, [(0, 0, 0), (1, 1, 1)])
        _run_per_row(slow, BulkOp.AND, dst, src1, src2)
        report = fast.engine.run_rows(BulkOp.AND, dst, src1, src2)
        assert report.fused_rows == 0
        assert report.fallback_rows == len(dst)
        fast.detach_tracer()
        _assert_equivalent(slow, fast)

    def test_stuck_row_forces_per_row_path(self):
        slow, fast = _twin_devices(seed=13)
        pinned = np.zeros(WORDS, dtype=np.uint64)
        for dev in (slow, fast):
            dev.chip.bank(0).subarray(0).inject_stuck_row(5, pinned)
        dst = [RowLocation(0, 0, 5), RowLocation(0, 0, 6)]
        src1 = [RowLocation(0, 0, 0)] * 2
        src2 = [RowLocation(0, 0, 1)] * 2
        _run_per_row(slow, BulkOp.OR, dst, src1, src2)
        report = fast.engine.run_rows(BulkOp.OR, dst, src1, src2)
        assert report.fused_rows == 0 and report.fallback_rows == 2
        _assert_equivalent(slow, fast)
        np.testing.assert_array_equal(fast.read_row(dst[0]), pinned)

    def test_write_read_hazard_forces_per_row_path(self):
        """Row 1's source is row 0's destination: sequential semantics."""
        slow, fast = _twin_devices(seed=17)
        dst = [RowLocation(0, 0, 5), RowLocation(0, 0, 6)]
        src1 = [RowLocation(0, 0, 0), RowLocation(0, 0, 5)]
        src2 = [RowLocation(0, 0, 1), RowLocation(0, 0, 1)]
        _run_per_row(slow, BulkOp.XOR, dst, src1, src2)
        report = fast.engine.run_rows(BulkOp.XOR, dst, src1, src2)
        assert report.fused_rows == 0 and report.fallback_rows == 2
        _assert_equivalent(slow, fast)

    def test_duplicate_destination_forces_per_row_path(self):
        slow, fast = _twin_devices(seed=19)
        dst = [RowLocation(0, 0, 5), RowLocation(0, 0, 5)]
        src1 = [RowLocation(0, 0, 0), RowLocation(0, 0, 1)]
        slow_report = fast.engine.run_rows(BulkOp.COPY, dst, src1)
        assert slow_report.fused_rows == 0
        _run_per_row(slow, BulkOp.COPY, dst, src1)
        _assert_equivalent(slow, fast)
        np.testing.assert_array_equal(
            fast.read_row(dst[0]), fast.read_row(src1[1])
        )


class TestParallelismReport:
    def test_even_spread_reports_full_overlap(self):
        _, fast = _twin_devices(seed=23)
        rows = [(b, 0, k) for b in range(GEO.banks) for k in range(3)]
        dst, src1, src2, _ = _layout(BulkOp.AND, rows)
        report = fast.engine.run_rows(BulkOp.AND, dst, src1, src2)
        par = report.parallelism
        assert par.banks == GEO.banks
        assert par.parallelism == pytest.approx(GEO.banks)
        assert par.serialized_ns == pytest.approx(fast.busy_ns)
        assert par.makespan_ns == pytest.approx(fast.elapsed_ns)

    def test_single_bank_reports_no_overlap(self):
        _, fast = _twin_devices(seed=29)
        dst, src1, src2, _ = _layout(BulkOp.OR, [(0, 0, 0), (0, 0, 1)])
        report = fast.engine.run_rows(BulkOp.OR, dst, src1, src2)
        assert report.parallelism.banks == 1
        assert report.parallelism.parallelism == pytest.approx(1.0)


class TestValidation:
    def test_mismatched_operand_lengths(self):
        _, fast = _twin_devices(seed=31)
        with pytest.raises(AddressError, match="align"):
            fast.engine.run_rows(
                BulkOp.AND,
                [RowLocation(0, 0, 5)],
                [RowLocation(0, 0, 0), RowLocation(0, 0, 1)],
                [RowLocation(0, 0, 1)],
            )

    def test_cross_subarray_operand_rejected(self):
        _, fast = _twin_devices(seed=37)
        with pytest.raises(AddressError, match="share a subarray"):
            fast.engine.run_rows(
                BulkOp.AND,
                [RowLocation(0, 0, 5)],
                [RowLocation(0, 1, 0)],
                [RowLocation(0, 0, 1)],
            )

    def test_empty_batch_is_a_no_op(self):
        _, fast = _twin_devices(seed=41)
        before = fast.chip.clock_ns
        report = fast.engine.run_rows(BulkOp.AND, [], [], [])
        assert report.rows == 0
        assert fast.chip.clock_ns == before
        assert report.parallelism.parallelism == 1.0
