"""The parallel experiment harness is deterministic and order-preserving.

The rule every test here pins down: **chunk/shard count is experiment
configuration, job count is not** -- the same root seed and the same
chunking produce bit-identical results whether the work runs serially,
in this process, or across any number of workers.
"""

import numpy as np
import pytest

from repro.circuit.montecarlo import (
    table2_experiment,
    tra_failure_rate_parallel,
)
from repro.errors import ConfigError
from repro.obs.counters import CounterSet
from repro.parallel.pmap import (
    default_jobs,
    parallel_map,
    spawn_rngs,
    spawn_seeds,
)
from repro.workloads.generators import packed_vector_shard, spawn_shard_rngs


def _square(x):
    return x * x


def test_parallel_map_preserves_order():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=3) == [x * x for x in items]


def test_parallel_map_serial_path_matches():
    items = list(range(7))
    assert parallel_map(_square, items, jobs=1) == parallel_map(
        _square, items, jobs=4
    )


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_spawn_seeds_validates():
    with pytest.raises(ConfigError):
        spawn_seeds(1, -1)


def test_spawn_rngs_reproducible_and_independent():
    a = [rng.integers(0, 2**63, size=8) for rng in spawn_rngs(11, 4)]
    b = [rng.integers(0, 2**63, size=8) for rng in spawn_rngs(11, 4)]
    for x, y in zip(a, b):
        assert np.array_equal(x, y)
    # Different children draw different streams.
    assert not np.array_equal(a[0], a[1])
    # spawn_shard_rngs is the same family, exposed at the workload layer.
    c = [rng.integers(0, 2**63, size=8) for rng in spawn_shard_rngs(11, 4)]
    for x, y in zip(a, c):
        assert np.array_equal(x, y)


def test_packed_vector_shards_identical_across_job_counts():
    seeds = spawn_seeds(21, 6)
    items = [(i, 256, ss, 0.4) for i, ss in enumerate(seeds)]
    serial = np.concatenate(parallel_map(packed_vector_shard, items, jobs=1))
    fanned = np.concatenate(parallel_map(packed_vector_shard, items, jobs=3))
    assert np.array_equal(serial, fanned)


def test_montecarlo_parallel_is_job_count_invariant():
    kwargs = dict(trials=6_000, chunks=5, seed=13)
    serial = tra_failure_rate_parallel(0.15, jobs=1, **kwargs)
    fanned = tra_failure_rate_parallel(0.15, jobs=3, **kwargs)
    assert serial.failures == fanned.failures
    assert serial.trials == fanned.trials == 6_000


def test_montecarlo_chunks_are_configuration():
    # Changing chunks is allowed to change the drawn streams...
    a = tra_failure_rate_parallel(0.2, trials=6_000, chunks=4, seed=13)
    b = tra_failure_rate_parallel(0.2, trials=6_000, chunks=8, seed=13)
    # ...but both are valid decks of the same experiment.
    assert abs(a.failure_rate - b.failure_rate) < 0.05
    with pytest.raises(ConfigError):
        tra_failure_rate_parallel(0.2, trials=6_000, chunks=0)
    with pytest.raises(ConfigError):
        tra_failure_rate_parallel(0.2, trials=0)


def test_table2_jobs_bit_identical_to_serial():
    serial = table2_experiment(trials=1_500)
    fanned = table2_experiment(trials=1_500, jobs=3)
    assert {k: v.failures for k, v in serial.items()} == {
        k: v.failures for k, v in fanned.items()
    }


def test_counter_set_merge_is_summation():
    a = CounterSet(activates=3, tras=1, busy_ns=5.0, ops={"and": 2})
    b = CounterSet(activates=2, energy_pj=7.5, ops={"and": 1, "xor": 4})
    merged = CounterSet.merge([a, b])
    assert merged.activates == 5
    assert merged.tras == 1
    assert merged.busy_ns == 5.0
    assert merged.energy_pj == 7.5
    assert merged.ops == {"and": 3, "xor": 4}
    # Merge order cannot matter, and merging nothing is the zero set.
    assert CounterSet.merge([b, a]).as_dict() == merged.as_dict()
    assert CounterSet.merge([]).as_dict() == CounterSet().as_dict()
