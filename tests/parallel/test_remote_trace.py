"""Cross-process trace collection is bit-identical to a serial trace.

The tentpole property of the distributed-telemetry PR: with a tracer
attached, a :class:`~repro.parallel.device.ShardedDevice` batch still
executes on the workers (no serial fallback); each worker traces its
rows into a per-(batch, shard) JSON-lines spool, and the parent merges
the spools back into one stream in canonical serial order.  The merged
stream must be *bit-identical* to what a serial traced run emits --
same events, same timestamps, same sequence numbers, same per-op
:class:`~repro.obs.counters.CounterSet` fold -- plus worker-lane
decoration: per-shard ``span`` events carrying the worker's pid and a
parent ``batch`` span linking them by batch id.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.obs.events import KIND_OP, KIND_SPAN, TraceEvent
from repro.obs.remote import (
    TracerConfig,
    read_spool,
    segment_rows,
    shard_busy_ns,
)
from repro.obs.sinks import ChromeTraceSink, CounterSink, RingBufferSink
from repro.obs.tracer import Tracer
from repro.parallel import ShardedDevice

ALL_OPS = tuple(BulkOp)

GEO = small_test_geometry(rows=32, row_bytes=64, banks=4, subarrays_per_bank=2)
DATA_ROWS = GEO.subarray.data_rows
WORDS = GEO.subarray.words_per_row

UNEVEN_SPREAD = {(0, 0): 3, (0, 1): 2, (1, 0): 1, (3, 1): 4}


def _fill(device, seed):
    rng = np.random.default_rng(seed)
    for bank in range(GEO.banks):
        for sub in range(GEO.subarrays_per_bank):
            for addr in range(DATA_ROWS):
                device.write_row(
                    RowLocation(bank, sub, addr),
                    rng.integers(0, 2**63, size=WORDS, dtype=np.uint64),
                )


def _spread_rows(spread, arity):
    dst, src1, src2, src3 = [], [], [], []
    for (bank, sub), count in spread.items():
        for j in range(count):
            dst.append(RowLocation(bank, sub, 3 * j))
            src1.append(RowLocation(bank, sub, 3 * j + 1))
            src2.append(RowLocation(bank, sub, 3 * j + 2))
            src3.append(RowLocation(bank, sub, max(0, 3 * (j - 1))))
    return (
        dst,
        src1,
        src2 if arity >= 2 else None,
        src3 if arity >= 3 else None,
    )


def _traced_serial(op, seed, spread):
    device = AmbitDevice(geometry=GEO)
    _fill(device, seed)
    ring, counters = RingBufferSink(), CounterSink()
    device.attach_tracer(Tracer(
        sinks=(ring, counters), timing=device.timing,
        row_bytes=device.row_bytes,
    ))
    dst, src1, src2, src3 = _spread_rows(spread, op.arity)
    device.engine.run_rows(op, dst, src1, src2, src3)
    return device, ring, counters


def _core_events(events):
    """Everything except the sharded run's decorative batch/shard spans."""
    return [
        e for e in events
        if not (e.kind == KIND_SPAN and e.name in ("batch", "shard"))
    ]


def _assert_streams_identical(serial_events, sharded_events):
    import dataclasses

    core = _core_events(sharded_events)
    assert len(serial_events) == len(core)
    for a, b in zip(serial_events, core):
        # pid is the one sanctioned difference: serial events have none,
        # replayed events carry their worker's pid (the Chrome lane).
        assert a == dataclasses.replace(b, pid=a.pid), (a, b)


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.value)
def test_traced_sharded_run_bit_identical_to_serial(op):
    serial, ring_s, counters_s = _traced_serial(op, 21, UNEVEN_SPREAD)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 21)
        ring_p, counters_p = RingBufferSink(), CounterSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p, counters_p), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        dst, src1, src2, src3 = _spread_rows(UNEVEN_SPREAD, op.arity)
        report = sharded.run_rows(op, dst, src1, src2, src3)

        # No serial fallback: the batch really ran on the workers.
        assert report.shards == 3
        assert sharded.pool is not None

        # Cells, accounting, and the tracer's CounterSet fold match
        # bit-for-bit.
        for loc in dst:
            assert np.array_equal(serial.read_row(loc), sharded.read_row(loc))
        assert serial.elapsed_ns == sharded.elapsed_ns
        assert serial.busy_ns == sharded.busy_ns
        assert counters_s.counters.as_dict() == counters_p.counters.as_dict()

        # The merged event stream is the serial stream, bit-identical.
        _assert_streams_identical(ring_s.events, ring_p.events)

        # Worker-lane decoration: one shard span per shard, pid-tagged,
        # plus a parent batch span linking them by batch id.
        shard_spans = [
            e for e in ring_p.events
            if e.kind == KIND_SPAN and e.name == "shard"
        ]
        batch_spans = [
            e for e in ring_p.events
            if e.kind == KIND_SPAN and e.name == "batch"
        ]
        assert len(shard_spans) == report.shards
        assert len(batch_spans) == 1
        batch_id = batch_spans[0].attrs["batch"]
        assert {e.attrs["batch"] for e in shard_spans} == {batch_id}
        assert all(e.pid not in (None, 0) for e in shard_spans)
        assert sum(e.attrs["rows"] for e in shard_spans) == report.rows


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    op=st.sampled_from(ALL_OPS),
    seed=st.integers(0, 2**31),
    counts=st.lists(st.integers(0, 4), min_size=4, max_size=4),
    workers=st.integers(2, 4),
    data=st.data(),
)
def test_random_spreads_traced_parity(op, seed, counts, workers, data):
    spread = {}
    for bank, count in enumerate(counts):
        if count:
            sub = data.draw(st.integers(0, GEO.subarrays_per_bank - 1))
            spread[(bank, sub)] = count
    serial, ring_s, counters_s = _traced_serial(op, seed, spread)

    with ShardedDevice(geometry=GEO, max_workers=workers) as sharded:
        _fill(sharded, seed)
        ring_p, counters_p = RingBufferSink(), CounterSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p, counters_p), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        dst, src1, src2, src3 = _spread_rows(spread, op.arity)
        sharded.run_rows(op, dst, src1, src2, src3)
        assert counters_s.counters.as_dict() == counters_p.counters.as_dict()
        _assert_streams_identical(ring_s.events, ring_p.events)


def test_consecutive_traced_batches_continue_the_clock():
    op = BulkOp.XOR
    serial, ring_s, _ = _traced_serial(op, 33, UNEVEN_SPREAD)
    dst, src1, src2, src3 = _spread_rows(UNEVEN_SPREAD, op.arity)
    serial.engine.run_rows(op, dst, src1, src2, src3)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 33)
        ring_p = RingBufferSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p,), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        sharded.run_rows(op, dst, src1, src2, src3)
        sharded.run_rows(op, dst, src1, src2, src3)
        batch_spans = [
            e for e in ring_p.events
            if e.kind == KIND_SPAN and e.name == "batch"
        ]
        assert len(batch_spans) == 2
        assert (batch_spans[0].attrs["batch"]
                != batch_spans[1].attrs["batch"])
        # From the second batch on, seq drifts by the decoration spans
        # of earlier batches (they consume emission indices); timestamps
        # and every other field still reconstruct exactly.
        import dataclasses

        core = _core_events(ring_p.events)
        assert len(ring_s.events) == len(core)
        for a, b in zip(ring_s.events, core):
            assert a == dataclasses.replace(b, pid=a.pid, seq=a.seq), (a, b)
        assert serial.elapsed_ns == sharded.elapsed_ns


def test_chrome_trace_gets_per_worker_process_lanes(tmp_path):
    path = tmp_path / "sharded.trace.json"
    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 44)
        sink = ChromeTraceSink(str(path))
        sharded.attach_tracer(Tracer(
            sinks=(sink,), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        dst, src1, src2, src3 = _spread_rows(UNEVEN_SPREAD, 2)
        report = sharded.run_rows(BulkOp.AND, dst, src1, src2)
        sink.close()

    events = json.loads(path.read_text())["traceEvents"]
    names = {
        (e["pid"], e["args"]["name"])
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert (0, "ambit-device") in names
    worker_lanes = {n for pid, n in names if pid != 0}
    # Shards may share a worker process, so lanes <= shards (but >= 1).
    assert 1 <= len(worker_lanes) <= report.shards
    assert all(n.startswith("worker-") for n in worker_lanes)


def test_spool_segmentation_and_replay_helpers():
    cfg = TracerConfig(timing={}, energy=None, row_bytes=64)
    assert cfg.row_bytes == 64

    events = [
        TraceEvent(kind="cmd", name="ACT", ts_ns=0.0, dur_ns=35.0),
        TraceEvent(kind=KIND_OP, name="and", ts_ns=0.0, dur_ns=196.0),
        TraceEvent(kind="cmd", name="ACT", ts_ns=5.0, dur_ns=35.0),
        TraceEvent(kind=KIND_OP, name="and", ts_ns=5.0, dur_ns=196.0),
    ]
    segments = segment_rows(events, 2)
    assert [len(s) for s in segments] == [2, 2]
    assert shard_busy_ns(segments) == pytest.approx(392.0)

    from repro.errors import ConcurrencyError

    with pytest.raises(ConcurrencyError):
        segment_rows(events, 3)
    with pytest.raises(ConcurrencyError):
        segment_rows(events[:3], 1)


def test_spool_round_trips_events(tmp_path):
    path = tmp_path / "spool.jsonl"
    event = TraceEvent(
        kind="primitive", name="AAP", ts_ns=1.5, dur_ns=84.0,
        bank=2, subarray=1, seq=7, attrs={"rows": 3},
    )
    with open(path, "w") as handle:
        handle.write(json.dumps(event.to_json()) + "\n")
    (back,) = read_spool(str(path))
    assert back.kind == event.kind and back.name == event.name
    assert back.ts_ns == event.ts_ns and back.dur_ns == event.dur_ns
    assert back.bank == event.bank and back.attrs == event.attrs


def test_events_from_bytes_matches_file_parsing(tmp_path):
    from repro.obs.remote import events_from_bytes

    events = [
        TraceEvent(kind="cmd", name="ACT", ts_ns=float(i), dur_ns=35.0,
                   bank=i % 2, seq=i)
        for i in range(4)
    ]
    blob = "".join(
        json.dumps(e.to_json()) + "\n" for e in events
    ).encode("utf-8")
    path = tmp_path / "spool.jsonl"
    path.write_bytes(blob)
    assert events_from_bytes(blob) == read_spool(str(path))


# ----------------------------------------------------------------------
# Zero-copy spools through the shared accounting block
# ----------------------------------------------------------------------
def _spool_dir_files(sharded):
    import os

    if sharded._spool_dir is None:
        return []
    return os.listdir(sharded._spool_dir)


def test_traced_spools_travel_zero_copy_not_as_files():
    """In the steady state the spool never touches the filesystem: the
    workers write it into their accounting-block slot and the parent
    merges straight from shared memory."""
    from repro.parallel.accounting import SPOOL_IN_FILE

    serial, ring_s, _ = _traced_serial(BulkOp.AND, 55, UNEVEN_SPREAD)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 55)
        ring_p = RingBufferSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p,), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
        report = sharded.run_rows(BulkOp.AND, dst, src1, src2)

        _assert_streams_identical(ring_s.events, ring_p.events)
        # Every shard's spool stayed in the block...
        for shard in range(report.shards):
            telemetry = sharded.block.read_telemetry(shard)
            assert telemetry.spool_len > 0
            assert not telemetry.spool_flags & SPOOL_IN_FILE
        # ...and the fallback directory holds no files.
        assert _spool_dir_files(sharded) == []


def test_spool_overflow_falls_back_to_files_bit_identically():
    """A spool slot too small for the batch flips the SPOOL_IN_FILE flag
    and routes through the legacy file path -- the merged stream must
    not change, and the consumed files are discarded."""
    from repro.parallel.accounting import SPOOL_IN_FILE

    serial, ring_s, _ = _traced_serial(BulkOp.XOR, 66, UNEVEN_SPREAD)

    with ShardedDevice(
        geometry=GEO, max_workers=3, spool_capacity=64
    ) as sharded:
        _fill(sharded, 66)
        ring_p = RingBufferSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p,), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
        report = sharded.run_rows(BulkOp.XOR, dst, src1, src2)

        _assert_streams_identical(ring_s.events, ring_p.events)
        for shard in range(report.shards):
            telemetry = sharded.block.read_telemetry(shard)
            assert telemetry.spool_flags & SPOOL_IN_FILE
            assert telemetry.spool_len == 0
        # The merge consumed and discarded every fallback file.
        assert _spool_dir_files(sharded) == []


def test_mid_run_quiesce_preserves_trace_identity():
    """Quiescing between traced batches (folding worker telemetry and
    draining the pool) must not disturb the merged stream or the
    accounting of later batches."""
    op = BulkOp.OR
    serial, ring_s, _ = _traced_serial(op, 77, UNEVEN_SPREAD)
    dst, src1, src2, src3 = _spread_rows(UNEVEN_SPREAD, op.arity)
    serial.engine.run_rows(op, dst, src1, src2, src3)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 77)
        ring_p = RingBufferSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p,), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        sharded.run_rows(op, dst, src1, src2, src3)
        sharded.quiesce()
        batches = sharded.metrics.get("ambit_worker_batches_total")
        folded = sum(c.value for c in batches.children.values())
        assert folded == 3  # one shard job per worker slot folded
        sharded.run_rows(op, dst, src1, src2, src3)

        import dataclasses

        core = _core_events(ring_p.events)
        assert len(ring_s.events) == len(core)
        for a, b in zip(ring_s.events, core):
            assert a == dataclasses.replace(b, pid=a.pid, seq=a.seq), (a, b)
        assert serial.elapsed_ns == sharded.elapsed_ns


def test_worker_crash_and_rebuild_keeps_traced_batches_exact():
    """A traced batch after a worker crash runs on the rebuilt pool and
    still merges bit-identically -- the crashed pool left no partial
    spool or telemetry behind."""
    from repro.errors import ConcurrencyError
    from repro.parallel.worker import crash

    serial, ring_s, counters_s = _traced_serial(BulkOp.AND, 88, UNEVEN_SPREAD)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 88)
        ring_p, counters_p = RingBufferSink(), CounterSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring_p, counters_p), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        pool = sharded._ensure_pool()
        future = pool.submit(crash, 5)
        with pytest.raises(ConcurrencyError, match="died"):
            pool.results([future])

        dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
        report = sharded.run_rows(BulkOp.AND, dst, src1, src2)
        assert report.shards == 3
        assert sharded.pool is not pool

        assert counters_s.counters.as_dict() == counters_p.counters.as_dict()
        _assert_streams_identical(ring_s.events, ring_p.events)
