"""Perf-invariant gate: the dispatch path stays O(1) per batch.

The resident-plan protocol's contract is *structural*, so it can be
tested without a clock: after the first batch of a given shape has
published its plan to the shared accounting block's board, every later
batch of that shape must cross the process boundary as a fingerprint id
plus a few integers -- never a row list, a plan object, or a tracer.
The pool's :class:`~repro.parallel.pool.PoolIOStats` counters measure
exactly what the executor pickles, so a regression that quietly starts
re-shipping payloads fails here long before it would show up as a
wall-clock number on some particular CI host.

Budgets are deliberately loose absolutes (a shard job message is ~176
bytes today; the gate says < 512) so refactors can move fields around
without churn, while an O(rows) regression -- tens of kilobytes for the
large shapes below -- still fails by an order of magnitude.
"""

import numpy as np

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.parallel import ShardedDevice

#: Per-job pickled-bytes ceiling in the steady state (id + integers).
JOB_BUDGET = 512
#: Per-result ceiling: workers return a bare shard index.
RESULT_BUDGET = 64

GEO = small_test_geometry(rows=64, row_bytes=64, banks=4, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row


def _fill(device, seed=17):
    rng = np.random.default_rng(seed)
    for bank in range(GEO.banks):
        for sub in range(GEO.subarrays_per_bank):
            for addr in range(GEO.subarray.data_rows):
                device.write_row(
                    RowLocation(bank, sub, addr),
                    rng.integers(0, 2**63, size=WORDS, dtype=np.uint64),
                )


def _batch(rows_per_bank):
    dst, src1, src2 = [], [], []
    for bank in range(GEO.banks):
        for i in range(rows_per_bank):
            dst.append(RowLocation(bank, 0, 2 + i))
            src1.append(RowLocation(bank, 0, 0))
            src2.append(RowLocation(bank, 0, 1))
    return dst, src1, src2


def test_steady_state_jobs_are_o1_messages():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        _fill(sharded)
        dst, src1, src2 = _batch(rows_per_bank=12)
        report = sharded.run_rows(BulkOp.AND, dst, src1, src2)  # warm-up
        assert report.shards == 2
        pool = sharded.pool
        assert pool is not None

        before = pool.io.snapshot()
        batches = 5
        for _ in range(batches):
            sharded.run_rows(BulkOp.AND, dst, src1, src2)
        delta = pool.io.delta(before)

        # Exactly one message per shard per batch, nothing else.
        assert delta.submitted_jobs == batches * report.shards
        assert delta.received_results == batches * report.shards
        # O(1) bytes per message regardless of the 48-row batch body.
        assert delta.max_submission_bytes < JOB_BUDGET
        assert delta.submitted_bytes < delta.submitted_jobs * JOB_BUDGET
        # Workers answer with a bare shard index.
        assert delta.received_bytes < delta.received_results * RESULT_BUDGET
        # One plan on the board serves every repeat.
        assert sharded.resident_plans == 1


def test_job_bytes_do_not_scale_with_batch_size():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        _fill(sharded)
        small = _batch(rows_per_bank=2)
        large = _batch(rows_per_bank=24)

        def warmed_max_bytes(batch):
            sharded.run_rows(BulkOp.OR, *batch)  # publish the plan
            before = sharded.pool.io.snapshot()
            sharded.run_rows(BulkOp.OR, *batch)
            return sharded.pool.io.delta(before).max_submission_bytes

        small_bytes = warmed_max_bytes(small)
        large_bytes = warmed_max_bytes(large)
        # A 12x larger batch crosses the boundary in the same envelope.
        assert large_bytes == small_bytes
        assert sharded.resident_plans == 2


def test_same_shape_shares_a_plan_across_ops():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        _fill(sharded)
        dst, src1, src2 = _batch(rows_per_bank=6)
        for op in (BulkOp.AND, BulkOp.OR, BulkOp.XOR, BulkOp.NAND):
            sharded.run_rows(op, dst, src1, src2)
        # The fingerprint is the operand layout, not the op.
        assert sharded.resident_plans == 1


def test_traced_batches_keep_the_budget():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        _fill(sharded)
        ring = RingBufferSink()
        sharded.attach_tracer(Tracer(
            sinks=(ring,), timing=sharded.timing,
            row_bytes=sharded.row_bytes,
        ))
        dst, src1, src2 = _batch(rows_per_bank=10)
        sharded.run_rows(BulkOp.XOR, dst, src1, src2)  # warm-up

        before = sharded.pool.io.snapshot()
        sharded.run_rows(BulkOp.XOR, dst, src1, src2)
        delta = sharded.pool.io.delta(before)

        # The tracer config shipped once at warm-up; traced steady-state
        # jobs are still O(1), and the spools come back through the
        # shared block, not the result pipe.
        assert delta.max_submission_bytes < JOB_BUDGET
        assert delta.received_bytes < delta.received_results * RESULT_BUDGET
        assert len(ring.events) > 0


def test_full_board_falls_back_inline_and_stays_correct():
    from repro.core.device import AmbitDevice

    serial = AmbitDevice(geometry=GEO)
    _fill(serial)
    dst, src1, src2 = _batch(rows_per_bank=4)
    serial.engine.run_rows(BulkOp.AND, dst, src1, src2)

    # A one-entry board: the first shape occupies it, the second must
    # ship inline -- visibly (bigger messages, 'inline' events) but
    # correctly.
    with ShardedDevice(
        geometry=GEO, max_workers=2, board_slots=1
    ) as sharded:
        _fill(sharded)
        sharded.run_rows(BulkOp.AND, dst, src1, src2)

        other = _batch(rows_per_bank=9)
        sharded.run_rows(BulkOp.AND, *other)  # board full -> inline

        # max_submission_bytes is a running high-water mark, so compare
        # the windows by average bytes per job instead.
        def bytes_per_job(batch):
            before = sharded.pool.io.snapshot()
            sharded.run_rows(BulkOp.AND, *batch)
            delta = sharded.pool.io.delta(before)
            return delta.submitted_bytes / delta.submitted_jobs

        resident_bytes = bytes_per_job((dst, src1, src2))  # resident
        inline_bytes = bytes_per_job(other)                # inline

        assert resident_bytes < JOB_BUDGET
        assert inline_bytes > resident_bytes
        family = sharded.metrics.get("ambit_resident_plans_total")
        assert family.labels(event="inline").value >= 2

        for loc in dst:
            assert np.array_equal(
                serial.read_row(loc), sharded.read_row(loc)
            )
