"""Worker health telemetry: gauges, crash context, reset atomicity.

Shard workers report pid, busy time, RSS, and a heartbeat with every
:class:`~repro.parallel.worker.ShardResult`; the pool folds them into
``ambit_worker_*`` metric families.  A dead worker must surface as a
:class:`~repro.errors.ConcurrencyError` naming the pid, exit code, and
in-flight batch id, and ``reset_stats`` must zero the whole registry --
counters, gauges, histograms -- in one quiesced epoch.
"""

import numpy as np
import pytest

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import ConcurrencyError
from repro.parallel import ShardedDevice

GEO = small_test_geometry(rows=32, row_bytes=64, banks=4, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row

SPREAD = {(0, 0): 3, (1, 0): 2, (2, 1): 2, (3, 0): 1}


def _rows(spread, arity=2):
    dst, src1, src2 = [], [], []
    for (bank, sub), count in spread.items():
        for j in range(count):
            dst.append(RowLocation(bank, sub, 3 * j))
            src1.append(RowLocation(bank, sub, 3 * j + 1))
            src2.append(RowLocation(bank, sub, 3 * j + 2))
    return dst, src1, src2 if arity >= 2 else None


def _fill(device, seed):
    rng = np.random.default_rng(seed)
    for loc in [
        RowLocation(bank, sub, addr)
        for bank in range(GEO.banks)
        for sub in range(GEO.subarrays_per_bank)
        for addr in range(GEO.subarray.data_rows)
    ]:
        device.write_row(
            loc, rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)
        )


def _gauge_values(registry, name):
    family = registry.get(name)
    if family is None:
        return {}
    return {labels: child.value for labels, child in family.children.items()}


def test_shard_results_populate_worker_gauges():
    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, 1)
        dst, src1, src2 = _rows(SPREAD)
        rep1 = sharded.run_rows(BulkOp.AND, dst, src1, src2)
        rep2 = sharded.run_rows(BulkOp.XOR, dst, src1, src2)
        registry = sharded.metrics

        batches = _gauge_values(registry, "ambit_worker_batches_total")
        assert batches, "no worker telemetry recorded"
        # One shard job per shard per batch.
        assert sum(batches.values()) == rep1.shards + rep2.shards
        busy = _gauge_values(registry, "ambit_worker_busy_ns_total")
        assert all(busy[pid] > 0 for pid in batches)
        rss = _gauge_values(registry, "ambit_worker_rss_bytes")
        assert all(rss[pid] > 0 for pid in batches)
        beat = _gauge_values(registry, "ambit_worker_heartbeat_ts")
        assert all(beat[pid] > 0 for pid in batches)
        last = _gauge_values(registry, "ambit_worker_last_batch")
        # Every worker's last-served batch is one of the two batch ids.
        assert set(last.values()) <= {1.0, 2.0}
        assert 2.0 in last.values()


def test_worker_crash_reports_pid_exit_code_and_batch():
    from repro.parallel.worker import crash

    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        pool = sharded._ensure_pool()
        future = pool.submit(crash, 5, batch_id=77)
        with pytest.raises(ConcurrencyError) as excinfo:
            pool.results([future])
        message = str(excinfo.value)
        # The message names pid, exit code, and the in-flight batch.
        # (The code may be the crasher's own 5 or the -SIGTERM of the
        # executor tearing down its siblings, depending on reap order.)
        assert "worker pid=" in message
        assert "exit code=" in message
        assert "batch id=77" in message
        dead, batch_ids = pool.crash_info
        assert batch_ids == [77]
        assert dead and all(code != 0 for _, code in dead)
        crashes = sharded.metrics.get("ambit_worker_crashes_total")
        assert crashes is not None and crashes.value >= 1


def test_reset_stats_zeroes_metrics_and_counters_atomically():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        _fill(sharded, 2)
        dst, src1, src2 = _rows(SPREAD)
        report = sharded.run_rows(BulkOp.OR, dst, src1, src2)
        registry = sharded.metrics
        assert sum(
            _gauge_values(registry, "ambit_worker_batches_total").values()
        ) > 0
        assert sum(_gauge_values(registry, "ambit_ops_total").values()) > 0
        latency = registry.get("ambit_op_latency_ns")
        assert any(c.count for c in latency.children.values())

        sharded.quiesce()
        sharded.reset_stats()

        # Device counters and the whole registry reset in one epoch:
        # scalars to zero, histograms emptied, worker gauges cleared.
        assert sharded.elapsed_ns == 0.0
        assert sum(_gauge_values(registry, "ambit_ops_total").values()) == 0
        assert all(
            v == 0.0
            for v in _gauge_values(
                registry, "ambit_worker_batches_total"
            ).values()
        )
        assert all(
            v == 0.0
            for v in _gauge_values(
                registry, "ambit_worker_busy_ns_total"
            ).values()
        )
        latency = registry.get("ambit_op_latency_ns")
        assert all(c.count == 0 for c in latency.children.values())
        assert all(c.sum == 0.0 for c in latency.children.values())

        # The next batch lands in the fresh epoch, consistent again.
        # (Worker telemetry folds at quiesce time, not per batch.)
        sharded.run_rows(BulkOp.OR, dst, src1, src2)
        sharded.quiesce()
        assert sum(
            _gauge_values(registry, "ambit_ops_total").values()
        ) == len(dst)
        assert sum(
            _gauge_values(registry, "ambit_worker_batches_total").values()
        ) == report.shards


def test_reset_stats_still_requires_quiesce_first():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        pool = sharded._ensure_pool()
        future = pool.submit(_slow_job, 0.4)
        with pytest.raises(ConcurrencyError, match="quiesce"):
            sharded.reset_stats()
        sharded.quiesce()
        assert future.result() is True
        sharded.reset_stats()


def _slow_job(seconds):
    import time

    time.sleep(seconds)
    return True
