"""The dispatch auto-tuner: golden decisions, pure tables, bit-exact tiers.

Two layers of guarantee:

* **Decision layer** -- :meth:`AutoTuner.choose` is a pure function of
  the request shape and the cost-model constants, so its behaviour is
  pinned by a golden decision table over hand-checked shapes (the
  crossover points the model exists to get right), plus properties:
  the choice always argmins the model's own estimates, ineligible
  shapes never pick the sharded tier, and ``decision_table`` never
  leaks into the decision counters.

* **Execution layer** -- whatever the tuner decides only moves
  wall-clock, never results: ``dispatch="auto"`` must leave cells,
  counters, clock, trace, and plan-cache statistics bit-identical to
  every *forced* tier and to the single-process engine, for all nine
  bulk operations (parametrized) and under hypothesis-random spreads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.errors import ConfigError
from repro.parallel import AutoTuner, DispatchTier, ShardedDevice
from repro.parallel.tuner import _TIER_ORDER

from .test_sharded_device import (
    GEO,
    UNEVEN_SPREAD,
    _assert_same_state,
    _fill,
    _spread_rows,
)

ALL_OPS = tuple(BulkOp)
DISPATCH_MODES = ("serial", "fused", "sharded", "auto")

#: The golden decision table: (rows, row_bytes, shards, jobs) -> tier,
#: hand-checked against the default cost model's crossover points.
GOLDEN_DECISIONS = (
    # Empty batch: nothing to amortize setup over.
    ((0, 64, 1, 8), "serial"),
    # Tiny batches: one fused planning pass beats per-row dispatch.
    ((1, 64, 1, 1), "fused"),
    ((8, 64, 4, 8), "fused"),
    # Mid-size, small rows: byte work too small to pay dispatch cost.
    ((4, 8192, 4, 8), "fused"),
    # Row-count heavy, byte-light: per-row planning dominates and is
    # not divided by sharding, so fan-out can never win.
    ((256, 64, 8, 8), "fused"),
    # Byte-heavy batches: divided kernel work dwarfs dispatch cost.
    ((64, 131072, 8, 8), "sharded"),
    ((64, 131072, 2, 2), "sharded"),
    ((16, 131072, 4, 4), "sharded"),
    # Same heavy shape but sharding ineligible: single worker / bank.
    ((64, 131072, 8, 1), "fused"),
    ((64, 131072, 1, 8), "fused"),
)


# ----------------------------------------------------------------------
# Decision layer
# ----------------------------------------------------------------------
def test_golden_decision_table():
    tuner = AutoTuner()
    shapes = [shape for shape, _ in GOLDEN_DECISIONS]
    table = tuner.decision_table(shapes)
    got = [row["tier"] for row in table]
    want = [tier for _, tier in GOLDEN_DECISIONS]
    assert got == want, list(zip(shapes, got, want))


def test_decision_table_is_pure():
    tuner = AutoTuner()
    tuner.choose(rows=64, row_bytes=131072, shards=8, jobs=8)
    before = dict(tuner.decisions)
    last = tuner.last_decision
    tuner.decision_table([s for s, _ in GOLDEN_DECISIONS])
    assert tuner.decisions == before
    assert tuner.last_decision is last


def test_choose_records_decisions_and_estimates():
    tuner = AutoTuner()
    tier = tuner.choose(rows=64, row_bytes=131072, shards=8, jobs=8)
    assert tier is DispatchTier.SHARDED
    assert tuner.decisions["sharded"] == 1
    decision = tuner.last_decision
    assert decision.rows == 64 and decision.shards == 8
    assert set(decision.estimates_s) == {"serial", "fused", "sharded"}
    # The recorded estimates really are what the choice minimised.
    assert decision.estimates_s["sharded"] == min(
        decision.estimates_s.values()
    )


@given(
    rows=st.integers(0, 4096),
    row_bytes=st.sampled_from((64, 1024, 8192, 65536, 131072)),
    shards=st.integers(1, 16),
    jobs=st.integers(1, 16),
)
@settings(max_examples=200, deadline=None)
def test_choice_is_argmin_of_own_estimates(rows, row_bytes, shards, jobs):
    tuner = AutoTuner()
    tier = tuner.choose(rows=rows, row_bytes=row_bytes, shards=shards, jobs=jobs)
    eligible = list(_TIER_ORDER)
    if shards < 2 or jobs < 2:
        eligible.remove(DispatchTier.SHARDED)
        assert tier is not DispatchTier.SHARDED
    best = min(
        tuner.estimate(t, rows, row_bytes, shards, jobs) for t in eligible
    )
    assert tuner.estimate(tier, rows, row_bytes, shards, jobs) == best


def test_invalid_dispatch_mode_rejected():
    with pytest.raises(ConfigError, match="dispatch"):
        ShardedDevice(geometry=GEO, max_workers=2, dispatch="fastest")


# ----------------------------------------------------------------------
# Execution layer: the tier choice never changes results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.value)
def test_auto_bit_exact_with_every_forced_tier(op):
    serial = AmbitDevice(geometry=GEO)
    _fill(serial, seed=31)
    dst, src1, src2, src3 = _spread_rows(UNEVEN_SPREAD, op.arity)
    serial.engine.run_rows(op, dst, src1, src2, src3)

    for mode in DISPATCH_MODES:
        with ShardedDevice(
            geometry=GEO, max_workers=3, dispatch=mode
        ) as device:
            _fill(device, seed=31)
            device.run_rows(op, dst, src1, src2, src3)
            _assert_same_state(serial, device)
            counter = device.metrics.get("ambit_dispatch_total")
            executed = {
                labels[0]
                for labels, child in counter.children.items()
                if child.value
            }
            if mode != "auto":
                assert executed == {mode}


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    op=st.sampled_from(ALL_OPS),
    seed=st.integers(0, 2**31),
    counts=st.lists(st.integers(0, 4), min_size=4, max_size=4),
    data=st.data(),
)
def test_random_spreads_all_modes_agree(op, seed, counts, data):
    spread = {}
    for bank, count in enumerate(counts):
        if count:
            sub = data.draw(st.integers(0, GEO.subarrays_per_bank - 1))
            spread[(bank, sub)] = count
    dst, src1, src2, src3 = _spread_rows(spread, op.arity)

    serial = AmbitDevice(geometry=GEO)
    _fill(serial, seed)
    serial.engine.run_rows(op, dst, src1, src2, src3)

    for mode in DISPATCH_MODES:
        with ShardedDevice(
            geometry=GEO, max_workers=3, dispatch=mode
        ) as device:
            _fill(device, seed)
            device.run_rows(op, dst, src1, src2, src3)
            _assert_same_state(serial, device)


def test_forced_tiers_execute_where_they_claim():
    dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
    # serial / fused never touch the pool.
    for mode in ("serial", "fused"):
        with ShardedDevice(
            geometry=GEO, max_workers=3, dispatch=mode
        ) as device:
            _fill(device, seed=3)
            device.run_rows(BulkOp.AND, dst, src1, src2)
            assert device.pool is None
    # sharded does.
    with ShardedDevice(
        geometry=GEO, max_workers=3, dispatch="sharded"
    ) as device:
        _fill(device, seed=3)
        report = device.run_rows(BulkOp.AND, dst, src1, src2)
        assert report.shards == 3
        assert device.pool is not None


def test_auto_mode_consults_the_device_tuner():
    tuner = AutoTuner()
    with ShardedDevice(
        geometry=GEO, max_workers=3, dispatch="auto", tuner=tuner
    ) as device:
        _fill(device, seed=9)
        dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
        device.run_rows(BulkOp.AND, dst, src1, src2)
        assert sum(tuner.decisions.values()) == 1
        decision = tuner.last_decision
        assert decision.rows == len(dst)
        assert decision.row_bytes == device.row_bytes
        # The executed tier is the decided tier.
        counter = device.metrics.get("ambit_dispatch_total")
        executed = {
            labels[0]
            for labels, child in counter.children.items()
            if child.value
        }
        assert executed == {decision.tier.value}


def test_calibrate_rebuilds_the_model_from_probes():
    tuner = AutoTuner()
    shipped = tuner.model
    with ShardedDevice(
        geometry=GEO, max_workers=2, dispatch="sharded", tuner=tuner
    ) as device:
        model = tuner.calibrate(device, rows=8, repeats=1)
    assert model is tuner.model
    assert model is not shipped
    for name, value in model.describe().items():
        assert value > 0, name
    # Statistics were reset after the probe batches.
    assert device.elapsed_ns == 0.0


# ----------------------------------------------------------------------
# Monte Carlo fan-out decisions
# ----------------------------------------------------------------------
def test_mc_dispatch_declines_on_single_core():
    from repro.parallel.tuner import plan_mc_dispatch

    decision = plan_mc_dispatch(trials=8_000_000, chunks=32, jobs=8, cores=1)
    assert decision.jobs == 1
    assert not decision.worthwhile
    assert "single-core" in decision.reason


def test_mc_dispatch_declines_when_dispatch_bound():
    from repro.parallel.tuner import McCostModel, plan_mc_dispatch

    # Tiny trial count: pool spin-up dwarfs the divided work.
    decision = plan_mc_dispatch(trials=1_000, chunks=32, jobs=8, cores=8)
    assert decision.jobs == 1
    assert not decision.worthwhile
    assert "dispatch-bound" in decision.reason
    # ...and the decision is a pure function of the model constants: a
    # free pool flips it.
    free = McCostModel(trial_s=2.4e-7, chunk_s=0.0, pool_spinup_s=0.0)
    flipped = plan_mc_dispatch(
        trials=1_000, chunks=32, jobs=8, cores=8, model=free
    )
    assert flipped.worthwhile and flipped.jobs == 8


def test_mc_dispatch_fans_out_when_work_dominates():
    from repro.parallel.tuner import plan_mc_dispatch

    decision = plan_mc_dispatch(trials=8_000_000, chunks=32, jobs=8, cores=8)
    assert decision.worthwhile
    assert decision.jobs == 8
    assert decision.reason == ""
    assert decision.parallel_est_s < decision.serial_est_s


def test_mc_dispatch_caps_workers_by_cores_and_chunks():
    from repro.parallel.tuner import plan_mc_dispatch

    by_cores = plan_mc_dispatch(
        trials=80_000_000, chunks=32, jobs=16, cores=4
    )
    assert by_cores.jobs == 4
    by_chunks = plan_mc_dispatch(
        trials=80_000_000, chunks=2, jobs=16, cores=16
    )
    assert by_chunks.jobs == 2


def test_mc_dispatch_never_touches_chunks():
    from repro.parallel.tuner import plan_mc_dispatch

    # The chunk count fixes the RNG streams (= the failure count); the
    # decision must echo it untouched whatever it decides about jobs.
    for trials in (1_000, 8_000_000):
        decision = plan_mc_dispatch(trials=trials, chunks=32, jobs=8, cores=8)
        assert decision.chunks == 32
