"""ShardedDevice is bit-exact against the single-process AmbitDevice.

The acceptance property of the tentpole: for every bulk operation, for
random inputs and uneven bank spreads, a batch through
:meth:`repro.parallel.device.ShardedDevice.run_rows` leaves cells,
counters, ``elapsed_ns``, per-bank busy time, and the full command trace
(energy is a pure fold over it) identical to the serial engine -- plus
the protocol edges: the stuck-row fallback, the quiesce-then-reset
rule, and worker-crash containment.  (Tracer-attached batches shard
too, with spool-merge parity -- see ``test_remote_trace.py``.)
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import ConcurrencyError
from repro.parallel import ShardedDevice
from repro.parallel.shm import live_segment_names, system_segments

ALL_OPS = tuple(BulkOp)

GEO = small_test_geometry(rows=32, row_bytes=64, banks=4, subarrays_per_bank=2)
DATA_ROWS = GEO.subarray.data_rows
WORDS = GEO.subarray.words_per_row

#: Uneven spread: rows per (bank, subarray), deliberately unbalanced and
#: including an idle bank so shard assignment must cope with holes.
UNEVEN_SPREAD = {(0, 0): 3, (0, 1): 2, (1, 0): 1, (3, 1): 4}


def _fill(device, seed):
    rng = np.random.default_rng(seed)
    for bank in range(GEO.banks):
        for sub in range(GEO.subarrays_per_bank):
            for addr in range(DATA_ROWS):
                device.write_row(
                    RowLocation(bank, sub, addr),
                    rng.integers(0, 2**63, size=WORDS, dtype=np.uint64),
                )


def _spread_rows(spread, arity):
    """Operand lists over a {(bank, sub): count} spread.

    Row ``j`` of a subarray uses dst ``3j``, sources ``3j+1``/``3j+2``
    and (for MAJ) wraps a third source back onto an earlier dst address
    -- a read-after-write hazard across batch items that forces the
    engine's fused-vs-per-row decision logic to run.
    """
    dst, src1, src2, src3 = [], [], [], []
    for (bank, sub), count in spread.items():
        for j in range(count):
            dst.append(RowLocation(bank, sub, 3 * j))
            src1.append(RowLocation(bank, sub, 3 * j + 1))
            src2.append(RowLocation(bank, sub, 3 * j + 2))
            src3.append(RowLocation(bank, sub, max(0, 3 * (j - 1))))
    return (
        dst,
        src1,
        src2 if arity >= 2 else None,
        src3 if arity >= 3 else None,
    )


def _assert_same_state(serial, sharded):
    for bank in range(GEO.banks):
        for sub in range(GEO.subarrays_per_bank):
            for addr in range(DATA_ROWS):
                loc = RowLocation(bank, sub, addr)
                assert np.array_equal(
                    serial.read_row(loc), sharded.read_row(loc)
                ), loc
    assert serial.elapsed_ns == sharded.elapsed_ns
    assert serial.busy_ns == sharded.busy_ns
    ss, sp = serial.controller.stats, sharded.controller.stats
    assert ss.aap_count == sp.aap_count
    assert ss.ap_count == sp.ap_count
    assert ss.bank_busy_ns == sp.bank_busy_ns
    assert ss.ops == sp.ops
    ts, tp = serial.chip.trace, sharded.chip.trace
    assert len(ts) == len(tp)
    for a, b in zip(ts, tp):
        assert a == b
    assert ts.weighted_activates() == tp.weighted_activates()
    cache_s = serial.controller.plan_cache
    cache_p = sharded.controller.plan_cache
    assert cache_s.hits == cache_p.hits
    assert cache_s.misses == cache_p.misses


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.value)
def test_all_ops_bit_exact_uneven_spread(op):
    serial = AmbitDevice(geometry=GEO)
    _fill(serial, seed=99)
    dst, src1, src2, src3 = _spread_rows(UNEVEN_SPREAD, op.arity)
    rep_serial = serial.engine.run_rows(op, dst, src1, src2, src3)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, seed=99)
        rep_sharded = sharded.run_rows(op, dst, src1, src2, src3)
        assert rep_sharded.shards == 3
        assert rep_sharded.rows == rep_serial.rows
        assert rep_sharded.fused_rows == rep_serial.fused_rows
        _assert_same_state(serial, sharded)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    op=st.sampled_from(ALL_OPS),
    seed=st.integers(0, 2**31),
    counts=st.lists(st.integers(0, 4), min_size=4, max_size=4),
    workers=st.integers(2, 5),
    data=st.data(),
)
def test_random_spreads_bit_exact(op, seed, counts, workers, data):
    spread = {}
    for bank, count in enumerate(counts):
        if count:
            sub = data.draw(st.integers(0, GEO.subarrays_per_bank - 1))
            spread[(bank, sub)] = count
    dst, src1, src2, src3 = _spread_rows(spread, op.arity)

    serial = AmbitDevice(geometry=GEO)
    _fill(serial, seed)
    rep_serial = serial.engine.run_rows(op, dst, src1, src2, src3)

    with ShardedDevice(geometry=GEO, max_workers=workers) as sharded:
        _fill(sharded, seed)
        rep_sharded = sharded.run_rows(op, dst, src1, src2, src3)
        assert rep_sharded.rows == rep_serial.rows
        assert rep_sharded.fused_rows == rep_serial.fused_rows
        _assert_same_state(serial, sharded)


def test_tracer_attached_still_shards():
    """A tracer no longer forces the serial fallback: the batch runs on
    the workers, and the merged state matches the serial traced run."""
    dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
    serial = AmbitDevice(geometry=GEO)
    _fill(serial, seed=5)
    serial.attach_tracer()
    serial.engine.run_rows(BulkOp.AND, dst, src1, src2)

    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, seed=5)
        sharded.attach_tracer()
        report = sharded.run_rows(BulkOp.AND, dst, src1, src2)
        assert report.shards == 3
        assert sharded.pool is not None
        _assert_same_state(serial, sharded)


def test_stuck_rows_fall_back_to_serial():
    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, seed=6)
        dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
        target = dst[0]
        sub = sharded.chip.bank(target.bank).subarray(target.subarray)
        sub.inject_stuck_row(0, np.zeros(WORDS, dtype=np.uint64))
        report = sharded.run_rows(BulkOp.OR, dst, src1, src2)
        assert report.shards == 1
        assert sharded.pool is None


def test_single_bank_batch_stays_in_process():
    with ShardedDevice(geometry=GEO, max_workers=3) as sharded:
        _fill(sharded, seed=7)
        spread = {(2, 0): 3}
        dst, src1, src2, _ = _spread_rows(spread, 2)
        report = sharded.run_rows(BulkOp.XOR, dst, src1, src2)
        assert report.shards == 1
        assert sharded.pool is None


def _slow_job(seconds):
    time.sleep(seconds)
    return True


def test_reset_stats_requires_quiesce():
    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        pool = sharded._ensure_pool()
        future = pool.submit(_slow_job, 0.5)
        with pytest.raises(ConcurrencyError, match="quiesce"):
            sharded.reset_stats()
        sharded.quiesce()
        assert future.result() is True
        sharded.reset_stats()
        assert sharded.elapsed_ns == 0.0


def test_worker_crash_raises_concurrency_error_and_recovers():
    from repro.parallel.worker import crash

    with ShardedDevice(geometry=GEO, max_workers=2) as sharded:
        _fill(sharded, seed=8)
        pool = sharded._ensure_pool()
        future = pool.submit(crash, 3)
        with pytest.raises(ConcurrencyError, match="died"):
            pool.results([future])
        assert pool.broken

        # The next batch transparently rebuilds the pool.
        dst, src1, src2, _ = _spread_rows(UNEVEN_SPREAD, 2)
        report = sharded.run_rows(BulkOp.AND, dst, src1, src2)
        assert report.shards == 2
        assert sharded.pool is not pool
        name = sharded.store.name
    assert name not in live_segment_names()
    assert name not in system_segments()


def test_close_is_idempotent_and_unlinks():
    sharded = ShardedDevice(geometry=GEO, max_workers=2)
    name = sharded.store.name
    sharded.close()
    sharded.close()
    assert name not in live_segment_names()
    assert name not in system_segments()
