"""SharedRowStore lifecycle: create, attach, write-through, unlink.

The contract the sharded device depends on: one segment holds every
subarray's cells, attachments see writes immediately (same physical
pages), only the owner unlinks, and no code path -- explicit close,
double close, or plain garbage collection -- can leak a ``/dev/shm``
entry.
"""

import gc

import numpy as np
import pytest

from repro.dram.geometry import small_test_geometry
from repro.errors import AddressError, ConfigError
from repro.parallel.shm import (
    SharedRowStore,
    live_segment_names,
    system_segments,
)

GEO = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)


def test_create_then_attach_shares_cells():
    owner = SharedRowStore.create(GEO)
    try:
        worker = SharedRowStore.attach(owner.name, GEO)
        owner.cells(0, 1)[3, :] = np.uint64(0xDEADBEEF)
        assert worker.cells(0, 1)[3, 0] == np.uint64(0xDEADBEEF)
        worker.restore(1, 0)[5] = 123.5
        assert owner.restore(1, 0)[5] == 123.5
        worker.release()
    finally:
        owner.release()
    assert owner.name not in system_segments()


def test_cells_start_zeroed():
    with SharedRowStore.create(GEO) as store:
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                assert not store.cells(bank, sub).any()
                assert not store.restore(bank, sub).any()


def test_release_is_idempotent_and_unlinks():
    store = SharedRowStore.create(GEO)
    name = store.name
    assert name in live_segment_names()
    store.release()
    store.release()
    assert name not in live_segment_names()
    assert name not in system_segments()
    assert not store.live


def test_garbage_collection_unlinks():
    store = SharedRowStore.create(GEO)
    name = store.name
    del store
    gc.collect()
    assert name not in live_segment_names()
    assert name not in system_segments()


def test_attach_rejects_undersized_segment():
    small = small_test_geometry(
        rows=32, row_bytes=64, banks=1, subarrays_per_bank=1
    )
    with SharedRowStore.create(small) as store:
        with pytest.raises(ConfigError, match="bytes"):
            SharedRowStore.attach(store.name, GEO)


def test_subarray_rejects_mismatched_external_buffers():
    from repro.dram.subarray import Subarray

    sub = GEO.subarray
    with pytest.raises(AddressError, match="uint64"):
        Subarray(sub, cells=np.zeros((2, 2), dtype=np.uint64))
    with pytest.raises(AddressError, match="float64"):
        Subarray(
            sub,
            cells=np.zeros(
                (sub.storage_rows, sub.words_per_row), dtype=np.uint64
            ),
            last_restore=np.zeros(3, dtype=np.float64),
        )


def test_device_close_releases_store():
    from repro.core.device import AmbitDevice

    store = SharedRowStore.create(GEO)
    device = AmbitDevice(geometry=GEO, row_store=store)
    name = store.name
    device.close()
    device.close()
    assert name not in live_segment_names()
    assert name not in system_segments()
