"""The shared accounting block: layout, spools, plan board, lifecycle.

Unit-level coverage of :class:`~repro.parallel.accounting.
SharedAccountingBlock` -- the fixed-layout shared-memory region that
carries worker telemetry, trace spools, and the resident plan board.
The integration behaviour (what a :class:`ShardedDevice` does with it)
lives in ``test_dispatch_budget.py`` / ``test_remote_trace.py``; this
file pins the block's own contract, including the parts integration
rarely exercises: magic validation, overflow edges, and cross-process
attachment.
"""

import pickle

import pytest

from repro.errors import ConcurrencyError, ConfigError
from repro.parallel.accounting import (
    SPOOL_IN_FILE,
    SharedAccountingBlock,
)
from repro.parallel.shm import live_segment_names, system_segments


def _block(**overrides):
    kwargs = dict(
        slots=3, spool_capacity=256, board_slots=4, board_capacity=1024
    )
    kwargs.update(overrides)
    return SharedAccountingBlock.create(**kwargs)


def test_telemetry_round_trip():
    block = _block()
    try:
        block.write_telemetry(
            1, pid=4242, rows=17, fused_rows=12, rss_bytes=1 << 20,
            batches_served=3, busy_ns=1.5e6, heartbeat_ts=123.25,
        )
        t = block.read_telemetry(1)
        assert t.pid == 4242 and t.rows == 17 and t.fused_rows == 12
        assert t.fallback_rows == 5
        assert t.rss_bytes == 1 << 20 and t.batches_served == 3
        assert t.busy_ns == 1.5e6 and t.heartbeat_ts == 123.25
        # Neighbouring slots stay untouched.
        assert block.read_telemetry(0).pid == 0
        assert block.read_telemetry(2).rows == 0
    finally:
        block.release()


def test_clear_slots_zeroes_only_the_batch_prefix():
    block = _block()
    try:
        for shard in range(3):
            block.write_telemetry(
                shard, pid=1, rows=5, fused_rows=5, rss_bytes=0,
                batches_served=1, busy_ns=1.0, heartbeat_ts=1.0,
            )
        block.clear_slots(2)
        assert block.read_telemetry(0).rows == 0
        assert block.read_telemetry(1).rows == 0
        assert block.read_telemetry(2).rows == 5
    finally:
        block.release()


def test_spool_write_read_and_overflow():
    block = _block(spool_capacity=16)
    try:
        assert block.write_spool(0, b"0123456789") is True
        assert block.read_spool(0) == b"0123456789"
        assert block.read_telemetry(0).spool_len == 10
        assert not block.read_telemetry(0).spool_flags & SPOOL_IN_FILE

        # Exactly at capacity still fits.
        assert block.write_spool(1, b"x" * 16) is True
        assert block.read_spool(1) == b"x" * 16

        # One byte over flips the in-file flag and empties the slot.
        assert block.write_spool(2, b"y" * 17) is False
        t = block.read_telemetry(2)
        assert t.spool_flags & SPOOL_IN_FILE
        assert t.spool_len == 0
        assert block.read_spool(2) == b""
    finally:
        block.release()


def test_board_publish_fetch_and_exhaustion():
    block = _block(board_slots=2, board_capacity=64)
    try:
        first = block.publish(b"alpha")
        second = block.publish(b"beta")
        assert (first, second) == (0, 1)
        assert block.fetch(0) == b"alpha"
        assert block.fetch(1) == b"beta"
        assert block.board_entries == 2
        assert block.board_used == 9
        # Directory full -> None, never an exception.
        assert block.publish(b"gamma") is None
        assert block.board_entries == 2
    finally:
        block.release()


def test_board_data_region_exhaustion():
    block = _block(board_slots=8, board_capacity=32)
    try:
        assert block.publish(b"a" * 30) == 0
        # 30 + 3 > 32: the payload no longer fits.
        assert block.publish(b"b" * 3) is None
        # A smaller one still does -- the region is append-only, not
        # all-or-nothing.
        assert block.publish(b"c" * 2) == 1
        assert block.fetch(1) == b"c" * 2
    finally:
        block.release()


def test_fetch_unpublished_id_is_a_protocol_error():
    block = _block()
    try:
        block.publish(b"only")
        with pytest.raises(ConcurrencyError, match="not published"):
            block.fetch(1)
        with pytest.raises(ConcurrencyError, match="not published"):
            block.fetch(-1)
    finally:
        block.release()


def test_attach_sees_published_state_and_never_unlinks():
    block = _block()
    name = block.name
    try:
        payload = pickle.dumps(("plan", [1, 2, 3]))
        entry = block.publish(payload)
        block.write_telemetry(
            2, pid=7, rows=9, fused_rows=9, rss_bytes=0,
            batches_served=1, busy_ns=2.0, heartbeat_ts=3.0,
        )

        attached = SharedAccountingBlock.attach(name)
        assert attached.slots == block.slots
        assert attached.spool_capacity == block.spool_capacity
        assert pickle.loads(attached.fetch(entry)) == ("plan", [1, 2, 3])
        assert attached.read_telemetry(2).rows == 9
        # The attachment writes telemetry the owner can read (the
        # worker->parent direction of the real protocol).
        attached.write_spool(0, b"from-attached")
        assert block.read_spool(0) == b"from-attached"
        attached.close()
        # A non-owner closing must not unlink the segment.
        assert SharedAccountingBlock.attach(name).slots == 3
    finally:
        block.release()
    assert name not in system_segments()


def test_attach_rejects_foreign_segments():
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=1024)
    try:
        with pytest.raises(ConfigError, match="not an accounting block"):
            SharedAccountingBlock.attach(segment.name)
    finally:
        segment.close()
        segment.unlink()


def test_create_rejects_zero_slots():
    with pytest.raises(ConfigError, match="slot"):
        SharedAccountingBlock.create(slots=0)


def test_release_unlinks_and_is_idempotent():
    block = _block()
    name = block.name
    assert name in live_segment_names()
    block.release()
    block.release()
    assert name not in live_segment_names()
    assert name not in system_segments()
