"""FaultPlan determinism and FaultInjector mechanics."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.dram.geometry import small_test_geometry
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector, flip_mask
from repro.faults.plan import DEVICE_KINDS, POOL_KINDS, FaultPlan

ROWS = {(0, 0): list(range(8)), (1, 0): list(range(8))}


def make_plan(**overrides):
    kwargs = dict(
        ops=200, seed=7, fault_rate=2e-2, rows=ROWS, row_bits=256,
        mc_trials=256,
    )
    kwargs.update(overrides)
    return FaultPlan.generate(**kwargs)


class TestPlan:
    def test_same_seed_same_schedule(self):
        assert make_plan().events == make_plan().events

    def test_different_seed_different_schedule(self):
        assert make_plan().events != make_plan(seed=8).events

    def test_at_least_one_event(self):
        """The Poisson draw is floored at one so tiny rates still test."""
        plan = make_plan(ops=10, fault_rate=1e-9)
        assert len(plan) >= 1

    def test_events_sorted_and_within_horizon(self):
        plan = make_plan()
        indices = [e.op_index for e in plan.events]
        assert indices == sorted(indices)
        assert all(0 <= i < 200 * 0.8 for i in indices)

    def test_stuck_rows_drawn_from_working_set(self):
        plan = make_plan()
        for event in plan.events:
            if event.kind == "stuck_row":
                assert event.row in ROWS[(event.bank, event.subarray)]

    def test_tra_flips_always_observable(self):
        plan = make_plan()
        for event in plan.events:
            if event.kind == "tra_flip":
                assert len(event.flip_bits) >= 1
                assert all(0 <= b < 256 for b in event.flip_bits)

    def test_at_most_one_dcc_fault_per_subarray(self):
        plan = make_plan(fault_rate=0.2, kinds=("dcc",))
        per_sub = {}
        for event in plan.events:
            if event.kind == "dcc":
                key = (event.bank, event.subarray)
                per_sub[key] = per_sub.get(key, 0) + 1
        assert all(count == 1 for count in per_sub.values())

    def test_pool_kinds_rejected_only_if_unknown(self):
        make_plan(kinds=DEVICE_KINDS + POOL_KINDS)  # valid
        with pytest.raises(ConfigError):
            make_plan(kinds=("bitrot",))

    def test_bad_config_raises(self):
        with pytest.raises(ConfigError):
            make_plan(ops=0)
        with pytest.raises(ConfigError):
            make_plan(rows={})

    def test_kinds_summary_counts_every_event(self):
        plan = make_plan()
        assert sum(plan.kinds().values()) == len(plan)


class TestFlipMask:
    def test_positions_map_to_words_and_bits(self):
        mask = flip_mask([0, 63, 64, 129], words=3)
        assert mask[0] == (1 | (1 << 63))
        assert mask[1] == 1
        assert mask[2] == 2


class TestInjector:
    def make_device(self):
        return AmbitDevice(
            geometry=small_test_geometry(
                rows=48, row_bytes=32, banks=2, subarrays_per_bank=1
            )
        )

    def test_stuck_row_applied_at_physical_row(self):
        device = self.make_device()
        plan = make_plan(kinds=("stuck_row",))
        injector = FaultInjector(device, plan)
        event = plan.events[0]
        injector.before_op(event.op_index)
        subarray = device.chip.bank(event.bank).subarray(event.subarray)
        assert event.row in subarray.stuck

    def test_tra_hook_is_one_shot(self):
        device = self.make_device()
        plan = make_plan(kinds=("tra_flip",))
        injector = FaultInjector(device, plan)
        event = plan.events[0]
        injector.before_op(event.op_index)
        subarray = device.chip.bank(event.bank).subarray(event.subarray)
        hook = subarray.tra_fault_hook
        assert hook is not None
        mask = hook(np.zeros(4, dtype=np.uint64))
        assert subarray.tra_fault_hook is None  # disarmed itself
        np.testing.assert_array_equal(
            mask, flip_mask(event.flip_bits, 4)
        )

    def test_pool_faults_skipped_on_plain_device(self):
        device = self.make_device()
        plan = make_plan(kinds=("worker_crash", "worker_stall"))
        injector = FaultInjector(device, plan)
        for event in plan.events:
            injector.before_op(event.op_index)
        assert injector.applied == []
        assert len(injector.skipped) == len(plan)

    def test_injected_counter_tracks_applied(self):
        device = self.make_device()
        plan = make_plan(kinds=("stuck_row",))
        injector = FaultInjector(device, plan)
        for i in range(plan.ops):
            injector.before_op(i)
        family = device.metrics.get("ambit_faults_injected_total")
        total = sum(child.value for child in family.children.values())
        assert total == len(injector.applied) == len(plan)
        assert injector.drain() == []

    def test_drain_reports_unreached_events(self):
        device = self.make_device()
        plan = make_plan(kinds=("stuck_row",))
        injector = FaultInjector(device, plan)  # never steps
        assert len(injector.drain()) == len(plan)
        assert injector.drain() == []  # drained once
