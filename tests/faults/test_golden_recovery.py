"""Golden command-sequence tests for the recovery ladder.

Like the Figure-8 traces, each recovery scenario's exact DRAM command
stream -- the faulty attempt, the detection probes, the recovered
re-execution -- is pinned to a checked-in file under ``tests/golden/``.
A reordered probe, an extra retry, or a changed remap sequence fails
here with a diff instead of drifting silently.
"""

import pytest

from tests.golden.regen import (
    RECOVERY_SCENARIOS,
    recovery_path,
    recovery_trace_text,
)

REGEN_HINT = (
    "recovery command sequence drifted from tests/golden/; if this "
    "change is intentional, regenerate with `PYTHONPATH=src python -m "
    "tests.golden.regen` and commit the diff"
)


@pytest.mark.parametrize("scenario", RECOVERY_SCENARIOS)
def test_golden_recovery_sequence(scenario):
    """Byte-for-byte equality against the checked-in recovery trace.

    ``recovery_trace_text`` itself asserts the episode recovered via
    the expected ladder rung (retried / remapped / rerouted), so this
    test pins both the outcome and the exact command stream.
    """
    golden = recovery_path(scenario).read_text()
    assert recovery_trace_text(scenario) == golden, (
        f"{scenario}: {REGEN_HINT}"
    )


def test_recovery_traces_are_distinct():
    """The three ladder rungs produce genuinely different streams."""
    texts = {
        scenario: recovery_path(scenario).read_text()
        for scenario in RECOVERY_SCENARIOS
    }
    assert len(set(texts.values())) == len(texts)


def test_recovery_traces_are_longer_than_clean_runs():
    """A recovered op costs extra commands (probes + re-execution): the
    remap and dcc traces must strictly contain more commands than the
    clean golden run of the same operation."""
    from repro.core.microprograms import BulkOp
    from tests.golden.regen import golden_path

    clean_and = golden_path(BulkOp.AND).read_text().count("\n")
    clean_not = golden_path(BulkOp.NOT).read_text().count("\n")
    assert recovery_path("remap").read_text().count("\n") > clean_and
    assert recovery_path("dcc").read_text().count("\n") > clean_not
    assert recovery_path("retry").read_text().count("\n") > clean_and
