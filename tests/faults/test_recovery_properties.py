"""Property suite: any single fault is survived bit-exactly.

For every bulk operation (all nine), a single injected stuck-row or
variation-induced TRA bit flip must leave the workload bit-exact
against the numpy reference after recovery, with zero unrecovered
faults -- on a plain :class:`~repro.core.device.AmbitDevice` and on a
:class:`~repro.parallel.device.ShardedDevice`.

The serial half is hypothesis-driven (operation, fault target, seed and
flip positions are all drawn); the sharded half sweeps every operation
deterministically inside one live device so the suite does not pay a
process-pool spawn per example.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.engine.batch import apply_bulk_op
from repro.faults.injector import flip_mask
from repro.faults.recover import FaultTolerantSession

ALL_OPS = tuple(BulkOp)

#: Operations whose programs issue at least one triple-row activation
#: (COPY and NOT are pure AAP sequences -- a TRA glitch cannot touch
#: them, so an armed one-shot hook must stay armed across them).
TRA_OPS = tuple(op for op in BulkOp if op not in (BulkOp.COPY, BulkOp.NOT))

#: Working-set layout of the 30 data rows the test geometry exposes.
SRC_ROWS = (0, 1, 2)
DST_ROW = 3
SCRATCH = (8, 9)
SPARES = tuple(range(10, 18))

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_geometry(banks=1):
    return small_test_geometry(
        rows=48, row_bytes=32, banks=banks, subarrays_per_bank=1
    )


def provision(session, rng, bank=0):
    """Scratch + spares + verified random images of the working set."""
    session.set_scratch(bank, 0, SCRATCH)
    session.add_spares(bank, 0, SPARES)
    words = session.device.geometry.subarray.words_per_row
    images = {}
    for row in SRC_ROWS + (DST_ROW,):
        data = rng.integers(0, 2**64, size=words, dtype=np.uint64)
        session.write_row(RowLocation(bank, 0, row), data)
        images[row] = data
    return images


def run_and_check(session, op, images, bank=0):
    """One verified op; asserts bit-exactness and full recovery."""
    device = session.device
    srcs = [RowLocation(bank, 0, r) for r in SRC_ROWS[: op.arity]]
    dst = RowLocation(bank, 0, DST_ROW)
    session.bbop_row(
        op,
        dst,
        srcs[0],
        srcs[1] if op.arity >= 2 else None,
        srcs[2] if op.arity >= 3 else None,
    )
    reference = apply_bulk_op(op, *[images[r] for r in SRC_ROWS[: op.arity]])
    np.testing.assert_array_equal(device.read_row(dst), reference)
    assert session.unrecovered_count == 0
    # The patrol scrub repairs rows the op itself never read (a stuck
    # source of a unary op, say) and must leave nothing behind.
    assert session.scrub() == []
    assert session.verify_all() == []
    assert session.unrecovered_count == 0
    return reference


def used_rows(op):
    return list(SRC_ROWS[: op.arity]) + [DST_ROW]


class TestSerialProperties:
    @SETTINGS
    @given(
        op=st.sampled_from(ALL_OPS),
        target_index=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_single_stuck_row_recovered_bit_exact(
        self, op, target_index, seed
    ):
        """A stuck operand or destination row is remapped to a spare."""
        device = AmbitDevice(geometry=make_geometry())
        session = FaultTolerantSession(device)
        images = provision(session, np.random.default_rng(seed))
        target = used_rows(op)[target_index % len(used_rows(op))]
        subarray = device.chip.bank(0).subarray(0)
        physical = device.controller.repair.translate(0, 0, target)
        subarray.inject_stuck_row(physical, ~images[target])
        run_and_check(session, op, images)
        # The pinned image differed from the intended one, so the fault
        # must have been caught and repaired, never waved through.
        assert session.log, "stuck row went undetected"
        assert all(r.action != "unrecovered" for r in session.log)
        assert any(r.action == "remapped" for r in session.log)
        assert session.recovered_count > 0

    @SETTINGS
    @given(
        op=st.sampled_from(ALL_OPS),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        bits=st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=8,
            unique=True,
        ),
    )
    def test_single_tra_flip_recovered_bit_exact(self, op, seed, bits):
        """A one-shot TRA bit flip is retried away (or cannot fire)."""
        device = AmbitDevice(geometry=make_geometry())
        session = FaultTolerantSession(device)
        images = provision(session, np.random.default_rng(seed))
        subarray = device.chip.bank(0).subarray(0)
        words = device.geometry.subarray.words_per_row
        mask = flip_mask(bits, words)

        def hook(sensed, _sub=subarray, _mask=mask):
            _sub.tra_fault_hook = None  # one-shot, like the injector
            return _mask

        subarray.tra_fault_hook = hook
        run_and_check(session, op, images)
        if op in TRA_OPS:
            assert subarray.tra_fault_hook is None, "hook never fired"
        else:
            # COPY/NOT issue no TRA; disarm so scrub stays comparable.
            subarray.tra_fault_hook = None
        # A flip inside an intermediate row can be masked by a later
        # majority/OR stage, leaving the final result correct with no
        # mismatch to recover from -- but anything the session *did*
        # flag must have been recovered.
        assert all(r.action != "unrecovered" for r in session.log)

    @SETTINGS
    @given(
        op=st.sampled_from(TRA_OPS),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_direct_tra_flip_is_detected_and_retried(self, op, seed):
        """Flipping every bit of the sensed value cannot be masked."""
        device = AmbitDevice(geometry=make_geometry())
        session = FaultTolerantSession(device)
        images = provision(session, np.random.default_rng(seed))
        subarray = device.chip.bank(0).subarray(0)
        words = device.geometry.subarray.words_per_row
        mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))

        def hook(sensed, _sub=subarray, _mask=mask):
            _sub.tra_fault_hook = None
            return _mask

        subarray.tra_fault_hook = hook
        run_and_check(session, op, images)
        assert any(
            r.kind == "tra_flip" and r.action == "retried"
            for r in session.log
        ), "an all-ones TRA flip must surface as a retried mismatch"


class TestShardedProperties:
    """The same single-fault property over a live worker pool.

    One device per fault kind; bank 0 carries the fault (recovered
    in-process by the session), bank 1 stays healthy (sharded fast
    path), so every op exercises both execution routes in one call.
    """

    BANKS = 2

    def _reset(self, device, rng):
        device.controller.repair.clear()
        session = FaultTolerantSession(device)
        images = {}
        for bank in range(self.BANKS):
            subarray = device.chip.bank(bank).subarray(0)
            for row in list(subarray.stuck):
                subarray.clear_stuck_row(row)
            subarray.tra_fault_hook = None
            images[bank] = provision(session, rng, bank=bank)
        return session, images

    def _run_all_banks(self, session, op, images):
        device = session.device
        dst = [RowLocation(b, 0, DST_ROW) for b in range(self.BANKS)]
        srcs = [
            [RowLocation(b, 0, r) for b in range(self.BANKS)]
            for r in SRC_ROWS[: op.arity]
        ]
        session.run_rows(
            op,
            dst,
            srcs[0],
            srcs[1] if op.arity >= 2 else None,
            srcs[2] if op.arity >= 3 else None,
        )
        for bank in range(self.BANKS):
            reference = apply_bulk_op(
                op, *[images[bank][r] for r in SRC_ROWS[: op.arity]]
            )
            np.testing.assert_array_equal(
                device.read_row(dst[bank]), reference
            )
        assert session.unrecovered_count == 0
        assert session.scrub() == []

    def test_stuck_row_every_op(self):
        from repro.parallel.device import ShardedDevice

        rng = np.random.default_rng(101)
        with ShardedDevice(
            geometry=make_geometry(banks=self.BANKS), max_workers=2
        ) as device:
            for i, op in enumerate(ALL_OPS):
                session, images = self._reset(device, rng)
                target = used_rows(op)[i % len(used_rows(op))]
                subarray = device.chip.bank(0).subarray(0)
                physical = device.controller.repair.translate(0, 0, target)
                subarray.inject_stuck_row(physical, ~images[0][target])
                self._run_all_banks(session, op, images)
                assert any(
                    r.action == "remapped" for r in session.log
                ), f"{op.value}: stuck row not remapped"

    def test_tra_flip_every_op(self):
        from repro.parallel.device import ShardedDevice

        rng = np.random.default_rng(202)
        with ShardedDevice(
            geometry=make_geometry(banks=self.BANKS), max_workers=2
        ) as device:
            words = device.geometry.subarray.words_per_row
            mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))
            for op in ALL_OPS:
                session, images = self._reset(device, rng)
                subarray = device.chip.bank(0).subarray(0)

                def hook(sensed, _sub=subarray, _mask=mask):
                    _sub.tra_fault_hook = None
                    return _mask

                subarray.tra_fault_hook = hook
                self._run_all_banks(session, op, images)
                if op in TRA_OPS:
                    assert any(
                        r.kind == "tra_flip" and r.action == "retried"
                        for r in session.log
                    ), f"{op.value}: TRA flip not retried"
                else:
                    subarray.tra_fault_hook = None


class TestRecoveryDisabled:
    def test_mismatch_counts_unrecovered(self):
        """Detection-only mode flags the fault instead of fixing it."""
        from repro.faults.recover import RecoveryPolicy

        device = AmbitDevice(geometry=make_geometry())
        session = FaultTolerantSession(
            device, RecoveryPolicy(enabled=False)
        )
        images = provision(session, np.random.default_rng(9))
        subarray = device.chip.bank(0).subarray(0)
        subarray.inject_stuck_row(0, ~images[0])
        dst = RowLocation(0, 0, DST_ROW)
        session.bbop_row(BulkOp.AND, dst, RowLocation(0, 0, 0),
                         RowLocation(0, 0, 1))
        assert session.unrecovered_count > 0
        assert all(r.action == "unrecovered" for r in session.log)

    def test_strict_policy_raises(self):
        from repro.errors import FaultError
        from repro.faults.recover import RecoveryPolicy

        device = AmbitDevice(geometry=make_geometry())
        session = FaultTolerantSession(
            device, RecoveryPolicy(enabled=False, strict=True)
        )
        images = provision(session, np.random.default_rng(10))
        subarray = device.chip.bank(0).subarray(0)
        subarray.inject_stuck_row(0, ~images[0])
        with pytest.raises(FaultError):
            session.bbop_row(
                BulkOp.AND,
                RowLocation(0, 0, DST_ROW),
                RowLocation(0, 0, 0),
                RowLocation(0, 0, 1),
            )


class TestAttemptHistory:
    """The timed-rung record is a bounded ring with a monotonic index.

    Long chaos soaks climb the ladder thousands of times; the session
    must not hold every rung forever, and the serving layer's
    mark-then-slice read pattern must survive the ring wrapping.
    """

    @staticmethod
    def _session():
        device = AmbitDevice(geometry=make_geometry())
        return FaultTolerantSession(device)

    @staticmethod
    def _climb(session, count):
        loc = RowLocation(0, 0, 0)
        for _ in range(count):
            session._attempt("write", loc, "retry", True,
                             start_ns=0)

    def test_ring_is_bounded_but_total_is_monotonic(self):
        from repro.faults.recover import ATTEMPT_HISTORY

        session = self._session()
        self._climb(session, ATTEMPT_HISTORY + 100)
        assert len(session.attempts) == ATTEMPT_HISTORY
        assert session.attempts_total == ATTEMPT_HISTORY + 100

    def test_attempts_since_survives_ring_wrap(self):
        from repro.faults.recover import ATTEMPT_HISTORY

        session = self._session()
        # Fill the ring completely, then mark and append a small wave's
        # worth of rungs -- the exact pattern the wave runner uses.
        self._climb(session, ATTEMPT_HISTORY + 7)
        mark = session.attempts_total
        self._climb(session, 5)
        fresh = session.attempts_since(mark)
        assert len(fresh) == 5
        assert fresh == list(session.attempts)[-5:]
        # A mark so old its rungs were evicted degrades to "everything
        # still retained", never to an IndexError or negative slice.
        assert len(session.attempts_since(0)) == ATTEMPT_HISTORY
        # A fresh mark with no rungs since returns the empty list.
        assert session.attempts_since(session.attempts_total) == []
