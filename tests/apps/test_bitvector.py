"""Device-backed BitVector API."""

import numpy as np
import pytest

from repro.apps.bitvector import AmbitBitSystem
from repro.dram.geometry import small_test_geometry
from repro.errors import AllocationError

GEO = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)
ROW_BITS = GEO.subarray.row_bits  # 512


@pytest.fixture
def system():
    return AmbitBitSystem(geometry=GEO)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestRoundTrip:
    def test_row_aligned(self, system, rng):
        bits = rng.random(2 * ROW_BITS) < 0.5
        v = system.from_bits(bits)
        assert np.array_equal(v.to_bits(), bits)

    def test_unaligned_size(self, system, rng):
        bits = rng.random(ROW_BITS + 37) < 0.5
        v = system.from_bits(bits)
        assert np.array_equal(v.to_bits(), bits)
        assert v.handle.num_rows == 2

    def test_popcount(self, system, rng):
        bits = rng.random(777) < 0.3
        v = system.from_bits(bits)
        assert v.popcount() == int(bits.sum())

    def test_size_mismatch_rejected(self, system, rng):
        v = system.bitvector(100)
        with pytest.raises(AllocationError):
            v.set_bits(np.zeros(101, dtype=bool))


class TestOperators:
    def test_and_or_xor(self, system, rng):
        n = ROW_BITS + 100
        ba = rng.random(n) < 0.5
        bb = rng.random(n) < 0.5
        a = system.from_bits(ba)
        b = system.from_bits(bb, like=a)
        assert np.array_equal((a & b).to_bits(), ba & bb)
        assert np.array_equal((a | b).to_bits(), ba | bb)
        assert np.array_equal((a ^ b).to_bits(), ba ^ bb)

    def test_invert_clears_padding(self, system, rng):
        n = ROW_BITS // 2 + 3  # partial final row
        ba = rng.random(n) < 0.5
        a = system.from_bits(ba)
        inv = ~a
        assert np.array_equal(inv.to_bits(), ~ba)
        assert inv.popcount() == int((~ba).sum())

    def test_nand_nor_xnor(self, system, rng):
        n = 300
        ba = rng.random(n) < 0.5
        bb = rng.random(n) < 0.5
        a = system.from_bits(ba)
        b = system.from_bits(bb, like=a)
        assert np.array_equal(a.nand(b).to_bits(), ~(ba & bb))
        assert np.array_equal(a.nor(b).to_bits(), ~(ba | bb))
        assert np.array_equal(a.xnor(b).to_bits(), ~(ba ^ bb))

    def test_copy(self, system, rng):
        ba = rng.random(ROW_BITS) < 0.5
        a = system.from_bits(ba)
        c = a.copy()
        assert np.array_equal(c.to_bits(), ba)

    def test_operands_survive(self, system, rng):
        ba = rng.random(200) < 0.5
        bb = rng.random(200) < 0.5
        a = system.from_bits(ba)
        b = system.from_bits(bb, like=a)
        _ = a & b
        assert np.array_equal(a.to_bits(), ba)
        assert np.array_equal(b.to_bits(), bb)

    def test_non_colocated_operands_still_correct(self, system, rng):
        # Vectors allocated independently may land in different
        # subarrays; ops stage through scratch rows and stay correct.
        n = 3 * ROW_BITS
        ba = rng.random(n) < 0.5
        bb = rng.random(n) < 0.5
        a = system.from_bits(ba)
        b = system.from_bits(bb)  # no like= -> possibly scattered
        assert np.array_equal((a & b).to_bits(), ba & bb)

    def test_chained_expression(self, system, rng):
        n = 600
        ba, bb, bc = (rng.random(n) < 0.5 for _ in range(3))
        a = system.from_bits(ba)
        b = system.from_bits(bb, like=a)
        c = system.from_bits(bc, like=a)
        result = (a & b) | (~c)
        assert np.array_equal(result.to_bits(), (ba & bb) | ~bc)

    def test_row_count_mismatch_rejected(self, system, rng):
        a = system.from_bits(rng.random(ROW_BITS) < 0.5)
        b = system.from_bits(rng.random(2 * ROW_BITS) < 0.5)
        with pytest.raises(AllocationError):
            _ = a & b


class TestAccounting:
    def test_ops_advance_device_clock(self, system, rng):
        a = system.from_bits(rng.random(100) < 0.5)
        b = system.from_bits(rng.random(100) < 0.5, like=a)
        before = system.elapsed_ns
        _ = a & b
        assert system.elapsed_ns > before

    def test_free_releases_rows(self, system, rng):
        free_before = system.driver.free_rows()
        v = system.from_bits(rng.random(ROW_BITS) < 0.5)
        v.free()
        assert system.driver.free_rows() == free_before

    def test_device_and_geometry_mutually_exclusive(self):
        from repro.core.device import AmbitDevice

        with pytest.raises(AllocationError):
            AmbitBitSystem(device=AmbitDevice(geometry=GEO), geometry=GEO)
