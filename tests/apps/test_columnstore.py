"""The mini column store: predicate algebra over BitWeaving columns."""

import numpy as np
import pytest

from repro.apps.columnstore import (
    Eq,
    Ge,
    Le,
    Range,
    Table,
    reference_eval,
    select_count,
)
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(111)
    n = 20_000
    return {
        "age": rng.integers(0, 100, size=n, dtype=np.uint64),
        "score": rng.integers(0, 1 << 12, size=n, dtype=np.uint64),
        "region": rng.integers(0, 8, size=n, dtype=np.uint64),
    }


@pytest.fixture(scope="module")
def table(data):
    return Table.from_columns(
        {"age": (data["age"], 7), "score": (data["score"], 12),
         "region": (data["region"], 3)}
    )


def _check(table, data, predicate, ambit=True):
    ctx = AmbitContext() if ambit else CpuContext()
    result = select_count(ctx, table, predicate, ambit=ambit)
    expected = int(reference_eval(data, predicate).sum())
    assert result.count == expected
    return result


class TestPredicates:
    def test_range(self, table, data):
        _check(table, data, Range("age", 30, 60))

    def test_eq(self, table, data):
        _check(table, data, Eq("region", 3))

    def test_le_ge(self, table, data):
        _check(table, data, Le("score", 100))
        _check(table, data, Ge("score", 4000))

    def test_conjunction(self, table, data):
        _check(table, data, Range("age", 18, 65) & Ge("score", 2048))

    def test_disjunction(self, table, data):
        _check(table, data, Eq("region", 0) | Eq("region", 7))

    def test_negation(self, table, data):
        _check(table, data, ~Range("age", 0, 17))

    def test_nested_tree(self, table, data):
        predicate = (Range("age", 21, 45) & ~Eq("region", 2)) | (
            Ge("score", 4000) & Le("age", 70)
        )
        _check(table, data, predicate)

    def test_baseline_and_ambit_agree(self, table, data):
        predicate = Range("score", 500, 3000) & Eq("region", 1)
        base = _check(table, data, predicate, ambit=False)
        ambit = _check(table, data, predicate, ambit=True)
        assert base.count == ambit.count


class TestExecution:
    def test_materialized_rows(self, table, data):
        predicate = Eq("region", 5) & Le("age", 25)
        ctx = AmbitContext()
        result = select_count(ctx, table, predicate, ambit=True,
                              materialize=True)
        expected_rows = np.nonzero(reference_eval(data, predicate))[0]
        assert result.matching_rows == tuple(int(r) for r in expected_rows)

    def test_ambit_faster_on_wide_predicate(self):
        # Row-scale masks (1M rows = 128 KB per plane) are where Ambit
        # pays off; the 20k-row fixture is sub-row and CPU-friendly.
        rng = np.random.default_rng(5)
        big = {"score": rng.integers(0, 1 << 12, size=1_000_000,
                                     dtype=np.uint64)}
        big_table = Table.from_columns({"score": (big["score"], 12)})
        predicate = Range("score", 100, 4000)
        base = _check(big_table, big, predicate, ambit=False)
        ambit = _check(big_table, big, predicate, ambit=True)
        assert ambit.elapsed_ns < base.elapsed_ns

    def test_elapsed_recorded(self, table, data):
        result = _check(table, data, Eq("region", 0))
        assert result.elapsed_ns > 0


class TestValidation:
    def test_unknown_column(self, table):
        with pytest.raises(SimulationError):
            select_count(CpuContext(), table, Eq("salary", 1), ambit=False)

    def test_mismatched_row_counts(self):
        with pytest.raises(SimulationError):
            Table.from_columns(
                {
                    "a": (np.arange(10, dtype=np.uint64), 4),
                    "b": (np.arange(20, dtype=np.uint64), 5),
                }
            )

    def test_empty_table(self):
        with pytest.raises(SimulationError):
            Table.from_columns({})

    def test_column_accessor(self, table):
        assert table.column("age").bits == 7


class TestSelectSum:
    def test_filtered_sum(self, table, data):
        from repro.apps.columnstore import select_sum

        predicate = Range("age", 30, 60)
        expected = int(data["score"][(data["age"] >= 30) & (data["age"] <= 60)].sum())
        for ambit in (False, True):
            ctx = AmbitContext() if ambit else CpuContext()
            assert select_sum(ctx, table, "score", predicate, ambit) == expected

    def test_unfiltered_sum(self, table, data):
        from repro.apps.columnstore import select_sum

        assert select_sum(
            CpuContext(), table, "age", None, ambit=False
        ) == int(data["age"].sum())

    def test_sum_of_masked_region_only(self, table, data):
        from repro.apps.columnstore import select_sum

        predicate = Eq("region", 0)
        expected = int(data["score"][data["region"] == 0].sum())
        assert select_sum(
            AmbitContext(), table, "score", predicate, ambit=True
        ) == expected
