"""Bloom filters and BitFunnel-style document filtering."""

import numpy as np
import pytest

from repro.apps.bitfunnel import BitFunnelIndex
from repro.apps.bloom import BloomFilter, optimal_num_hashes
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext
from repro.workloads import synthetic_corpus


class TestBloomFilter:
    def test_no_false_negatives(self):
        items = [f"term{i}" for i in range(100)]
        bloom = BloomFilter.build(items, bits=2048, num_hashes=3)
        assert all(item in bloom for item in items)

    def test_absent_items_mostly_rejected(self):
        bloom = BloomFilter.build(
            [f"term{i}" for i in range(50)], bits=4096, num_hashes=4
        )
        false_positives = sum(
            1 for i in range(1000) if f"other{i}" in bloom
        )
        assert false_positives < 50  # ~theoretical FPR is well under 5%

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter.empty(bits=512, num_hashes=3)
        assert "anything" not in bloom

    def test_theoretical_fpr(self):
        bloom = BloomFilter.empty(bits=1024, num_hashes=3)
        assert bloom.false_positive_rate(0) == 0.0
        assert 0.0 < bloom.false_positive_rate(100) < 1.0

    def test_optimal_hashes(self):
        assert optimal_num_hashes(1024, 100) == round(1024 / 100 * 0.693)
        assert optimal_num_hashes(64, 10_000) == 1

    def test_deterministic_hashing(self):
        a = BloomFilter.build(["x", "y"], bits=512, num_hashes=3)
        b = BloomFilter.build(["x", "y"], bits=512, num_hashes=3)
        assert np.array_equal(a.vector, b.vector)

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            BloomFilter.empty(bits=100, num_hashes=3)  # not multiple of 64
        with pytest.raises(SimulationError):
            BloomFilter.empty(bits=512, num_hashes=0)


class TestBitFunnel:
    @pytest.fixture(scope="class")
    def corpus(self):
        return synthetic_corpus(500, 10, np.random.default_rng(71))

    @pytest.fixture(scope="class")
    def index(self, corpus):
        return BitFunnelIndex.build(corpus, signature_bits=256, num_hashes=3)

    def test_match_includes_all_true_documents(self, corpus, index):
        terms = corpus[42][:2]
        matches = index.match(CpuContext(), terms)
        for d, doc in enumerate(corpus):
            if all(t in doc for t in terms):
                assert d in matches  # Bloom signatures never miss

    def test_match_equals_reference(self, corpus, index):
        terms = corpus[7][:3]
        assert index.match(CpuContext(), terms) == index.match_reference(terms)

    def test_ambit_and_cpu_agree(self, corpus, index):
        terms = corpus[99][:2]
        assert index.match(CpuContext(), terms) == index.match(
            AmbitContext(), terms
        )

    def test_query_positions_deterministic(self, index):
        terms = ["memory3", "dram7"]
        assert index.query_positions(terms) == index.query_positions(terms)

    def test_more_terms_fewer_candidates(self, corpus, index):
        one = index.match(CpuContext(), corpus[5][:1])
        three = index.match(CpuContext(), corpus[5][:3])
        assert set(three) <= set(one)

    def test_empty_query_rejected(self, index):
        with pytest.raises(SimulationError):
            index.match(CpuContext(), [])

    def test_empty_corpus_rejected(self):
        with pytest.raises(SimulationError):
            BitFunnelIndex.build([], signature_bits=256)

    def test_slices_shape(self, index):
        assert len(index.slices) == 256
        assert index.slices[0].dtype == np.uint64


class TestHigherRankRows:
    """BitFunnel's rank dial: memory vs candidate precision."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return synthetic_corpus(300, 10, np.random.default_rng(99))

    def test_rank0_equivalent_to_default(self, corpus):
        a = BitFunnelIndex.build(corpus, signature_bits=256, rank=0)
        b = BitFunnelIndex.build(corpus, signature_bits=256)
        terms = corpus[10][:2]
        assert a.match(CpuContext(), terms) == b.match(CpuContext(), terms)

    def test_higher_rank_shrinks_slices(self, corpus):
        r0 = BitFunnelIndex.build(corpus, signature_bits=256, rank=0)
        r2 = BitFunnelIndex.build(corpus, signature_bits=256, rank=2)
        assert r2.slices[0].nbytes < r0.slices[0].nbytes
        assert r2.num_groups == -(-r0.num_docs // 4)

    def test_higher_rank_never_misses(self, corpus):
        # Rank folding only adds candidates, never drops true matches.
        r0 = BitFunnelIndex.build(corpus, signature_bits=256, rank=0)
        r3 = BitFunnelIndex.build(corpus, signature_bits=256, rank=3)
        terms = corpus[42][:2]
        assert set(r0.match(CpuContext(), terms)) <= set(
            r3.match(CpuContext(), terms)
        )

    def test_verified_results_identical_across_ranks(self, corpus):
        terms = corpus[7][:2]
        expected = [
            d for d, doc in enumerate(corpus) if all(t in doc for t in terms)
        ]
        for rank in (0, 2, 4):
            index = BitFunnelIndex.build(corpus, signature_bits=256, rank=rank)
            verified = index.match_verified(CpuContext(), terms, corpus)
            assert set(expected) <= set(verified)
            # Verified candidates actually contain the terms.
            assert all(
                all(t in corpus[d] for t in terms) for d in verified
            )

    def test_rank_match_reference_agrees(self, corpus):
        index = BitFunnelIndex.build(corpus, signature_bits=256, rank=2)
        terms = corpus[5][:1]
        assert index.match(CpuContext(), terms) == index.match_reference(terms)

    def test_negative_rank_rejected(self, corpus):
        with pytest.raises(SimulationError):
            BitFunnelIndex.build(corpus, rank=-1)
