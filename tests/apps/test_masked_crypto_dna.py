"""The remaining Section 8.4 applications: masked init, crypto, DNA."""

import numpy as np
import pytest

from repro.apps.crypto import (
    combine_shares,
    keystream,
    make_shares,
    xor_decrypt,
    xor_encrypt,
)
from repro.apps.dna import (
    decode_sequence,
    encode_sequence,
    hamming_distance,
    match_mask,
    shd_filter,
    shd_filter_batch,
)
from repro.apps.masked_init import (
    clear_color_channel,
    masked_init,
    reference_masked_init,
)
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext
from repro.workloads import mutate_dna, random_dna


@pytest.fixture
def rng():
    return np.random.default_rng(81)


def _vec(rng, n=256):
    return rng.integers(0, 2**63, size=n, dtype=np.uint64)


class TestMaskedInit:
    def test_masked_clear(self, rng):
        buf, mask = _vec(rng), _vec(rng)
        out = masked_init(CpuContext(), buf, mask)
        assert np.array_equal(out, buf & ~mask)

    def test_masked_write(self, rng):
        buf, mask, pattern = _vec(rng), _vec(rng), _vec(rng)
        out = masked_init(AmbitContext(), buf, mask, pattern)
        assert np.array_equal(out, reference_masked_init(buf, mask, pattern))

    def test_full_mask_replaces_everything(self, rng):
        buf, pattern = _vec(rng), _vec(rng)
        mask = np.full_like(buf, np.uint64(2**64 - 1))
        out = masked_init(CpuContext(), buf, mask, pattern)
        assert np.array_equal(out, pattern)

    def test_empty_mask_preserves(self, rng):
        buf = _vec(rng)
        out = masked_init(CpuContext(), buf, np.zeros_like(buf), _vec(rng))
        assert np.array_equal(out, buf)

    def test_clear_color_channel(self, rng):
        image = _vec(rng, 64)
        out = clear_color_channel(CpuContext(), image, channel=1)
        as_bytes = out.view(np.uint8).reshape(-1, 4)
        assert (as_bytes[:, 1] == 0).all()
        original = image.view(np.uint8).reshape(-1, 4)
        for ch in (0, 2, 3):
            assert np.array_equal(as_bytes[:, ch], original[:, ch])

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(SimulationError):
            masked_init(CpuContext(), _vec(rng, 8), _vec(rng, 16))

    def test_bad_channel_rejected(self, rng):
        with pytest.raises(SimulationError):
            clear_color_channel(CpuContext(), _vec(rng, 8), channel=4)


class TestCrypto:
    def test_encrypt_decrypt_roundtrip(self, rng):
        pt = _vec(rng)
        ct = xor_encrypt(AmbitContext(), pt, b"key", b"nonce")
        assert not np.array_equal(ct, pt)
        assert np.array_equal(xor_decrypt(AmbitContext(), ct, b"key", b"nonce"), pt)

    def test_wrong_key_fails(self, rng):
        pt = _vec(rng)
        ct = xor_encrypt(CpuContext(), pt, b"key", b"nonce")
        garbage = xor_decrypt(CpuContext(), ct, b"other", b"nonce")
        assert not np.array_equal(garbage, pt)

    def test_wrong_nonce_fails(self, rng):
        pt = _vec(rng)
        ct = xor_encrypt(CpuContext(), pt, b"key", b"nonce1")
        assert not np.array_equal(
            xor_decrypt(CpuContext(), ct, b"key", b"nonce2"), pt
        )

    def test_keystream_deterministic_and_keyed(self):
        a = keystream(b"k", b"n", 64)
        assert np.array_equal(a, keystream(b"k", b"n", 64))
        assert not np.array_equal(a, keystream(b"k2", b"n", 64))

    def test_empty_key_rejected(self):
        with pytest.raises(SimulationError):
            keystream(b"", b"n", 4)

    def test_secret_sharing_roundtrip(self, rng):
        secret = _vec(rng)
        shares = make_shares(AmbitContext(), secret, n=5, rng=rng)
        assert len(shares) == 5
        assert np.array_equal(combine_shares(AmbitContext(), shares), secret)

    def test_incomplete_shares_reveal_nothing(self, rng):
        secret = _vec(rng)
        shares = make_shares(CpuContext(), secret, n=3, rng=rng)
        partial = combine_shares(CpuContext(), shares[:2])
        assert not np.array_equal(partial, secret)

    def test_share_count_validated(self, rng):
        with pytest.raises(SimulationError):
            make_shares(CpuContext(), _vec(rng), n=1, rng=rng)
        with pytest.raises(SimulationError):
            combine_shares(CpuContext(), (_vec(rng),))


class TestDna:
    def test_encode_decode_roundtrip(self, rng):
        seq = random_dna(321, rng)
        assert decode_sequence(encode_sequence(seq), len(seq)) == seq

    def test_invalid_base_rejected(self):
        with pytest.raises(SimulationError):
            encode_sequence("ACGX")

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            encode_sequence("")

    def test_match_mask_marks_agreements(self):
        ctx = CpuContext()
        a = encode_sequence("ACGTACGT")
        b = encode_sequence("ACGAACGA")
        mask = match_mask(ctx, a, b)
        bits = np.unpackbits(mask.view(np.uint8), bitorder="little")[:8]
        assert list(bits) == [1, 1, 1, 0, 1, 1, 1, 0]

    def test_filter_accepts_close_candidate(self, rng):
        ref = random_dna(200, rng)
        read, _ = mutate_dna(ref, 3, rng)
        decision = shd_filter(CpuContext(), read, ref, max_errors=5)
        assert decision.accepted and decision.mismatches == hamming_distance(
            read, ref
        )

    def test_filter_rejects_random_candidate(self, rng):
        read = random_dna(200, rng)
        window = random_dna(200, rng)
        decision = shd_filter(CpuContext(), read, window, max_errors=5)
        assert not decision.accepted

    def test_shift_tolerance_recovers_insertion(self, rng):
        # A one-base slip mismatches everywhere without shifts but is
        # forgiven with max_shift=1.
        ref = random_dna(300, rng)
        slipped = ref[1:] + "A"
        strict = shd_filter(CpuContext(), slipped, ref, max_errors=20,
                            max_shift=0)
        tolerant = shd_filter(CpuContext(), slipped, ref, max_errors=20,
                              max_shift=1)
        assert tolerant.mismatches < strict.mismatches
        assert tolerant.accepted

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            shd_filter(CpuContext(), "ACGT", "ACG", 1)

    def test_batch_matches_individual(self, rng):
        ref = random_dna(4000, rng)
        reads, windows = [], []
        for offset in (0, 64, 128, 777):
            window = ref[offset : offset + 128]
            read, _ = mutate_dna(window, int(rng.integers(0, 6)), rng)
            reads.append(read)
            windows.append(window)
        batch = shd_filter_batch(CpuContext(), reads, windows, max_errors=4)
        for read, window, decision in zip(reads, windows, batch):
            single = shd_filter(CpuContext(), read, window, max_errors=4)
            assert decision.accepted == single.accepted
            assert decision.mismatches == single.mismatches

    def test_batch_empty(self):
        assert shd_filter_batch(CpuContext(), [], [], 1) == []

    def test_batch_length_mismatch(self, rng):
        with pytest.raises(SimulationError):
            shd_filter_batch(CpuContext(), ["ACGT"], [], 1)

    def test_ambit_and_cpu_contexts_agree(self, rng):
        ref = random_dna(256, rng)
        read, _ = mutate_dna(ref, 4, rng)
        a = shd_filter(CpuContext(), read, ref, max_errors=10)
        b = shd_filter(AmbitContext(), read, ref, max_errors=10)
        assert (a.accepted, a.mismatches) == (b.accepted, b.mismatches)
