"""Set implementations and the Figure 12 trade-off."""

import numpy as np
import pytest

from repro.apps.sets import (
    AmbitSetOps,
    BitsetSetOps,
    RBTreeSetOps,
    reference_set_op,
)
from repro.errors import SimulationError
from repro.sim.cpu import CpuModel
from repro.workloads import random_sets

DOMAIN = 64 * 1024


@pytest.fixture
def cpu():
    return CpuModel()


@pytest.fixture
def impls(cpu):
    return {
        "rb": RBTreeSetOps(cpu),
        "bitset": BitsetSetOps(DOMAIN, cpu),
        "ambit": AmbitSetOps(DOMAIN, cpu),
    }


@pytest.fixture
def sets():
    return random_sets(5, 40, DOMAIN, np.random.default_rng(61))


class TestCorrectness:
    @pytest.mark.parametrize("op", ["union", "intersection", "difference"])
    def test_all_implementations_agree(self, impls, sets, op):
        ref = reference_set_op(sets, op)
        for name, impl in impls.items():
            assert getattr(impl, op)(sets).elements == ref, name

    def test_intersection_with_overlap(self, impls):
        sets = [[1, 2, 3, 4], [2, 3, 4, 5], [3, 4, 5, 6]]
        for impl in impls.values():
            assert impl.intersection(sets).elements == [3, 4]

    def test_difference_semantics(self, impls):
        sets = [[1, 2, 3, 4, 5], [2, 4], [5]]
        for impl in impls.values():
            assert impl.difference(sets).elements == [1, 3]

    def test_union_of_disjoint(self, impls):
        sets = [[1], [2], [3]]
        for impl in impls.values():
            assert impl.union(sets).elements == [1, 2, 3]

    def test_single_set_identity(self, impls):
        sets = [[7, 9]]
        for impl in impls.values():
            assert impl.union(sets).elements == [7, 9]

    def test_empty_input_rejected(self, impls):
        for impl in impls.values():
            with pytest.raises(SimulationError):
                impl.union([])

    def test_domain_bounds_enforced(self, cpu):
        bitset = BitsetSetOps(DOMAIN, cpu)
        with pytest.raises(SimulationError):
            bitset.union([[0]])  # domain is 1..N
        with pytest.raises(SimulationError):
            bitset.union([[DOMAIN + 1]])

    def test_unknown_op_rejected(self, impls, sets):
        with pytest.raises(SimulationError):
            impls["rb"]._run(sets, "xor")
        with pytest.raises(SimulationError):
            impls["bitset"]._run(sets, "xor")


class TestFigure12Shape:
    def test_rb_wins_for_tiny_sets(self, impls):
        tiny = random_sets(15, 4, DOMAIN, np.random.default_rng(1))
        rb = impls["rb"].intersection(tiny).elapsed_ns
        bitset = impls["bitset"].intersection(tiny).elapsed_ns
        assert rb < bitset

    def test_bitvectors_win_for_large_sets(self, impls):
        big = random_sets(15, 2048, DOMAIN, np.random.default_rng(2))
        rb = impls["rb"].union(big).elapsed_ns
        bitset = impls["bitset"].union(big).elapsed_ns
        ambit = impls["ambit"].union(big).elapsed_ns
        assert bitset < rb
        assert ambit < rb

    def test_ambit_beats_bitset(self, impls):
        # Paper: ~3X over the SIMD Bitset.
        sets = random_sets(15, 256, DOMAIN, np.random.default_rng(3))
        for op in ("union", "intersection", "difference"):
            bitset = getattr(impls["bitset"], op)(sets).elapsed_ns
            ambit = getattr(impls["ambit"], op)(sets).elapsed_ns
            assert 1.5 <= bitset / ambit <= 12.0, op

    def test_bitvector_cost_independent_of_element_count(self, impls):
        # Bitvector ops scan the domain regardless of e (Section 8.3).
        small = random_sets(15, 4, DOMAIN, np.random.default_rng(4))
        large = random_sets(15, 2048, DOMAIN, np.random.default_rng(5))
        t_small = impls["bitset"].union(small).elapsed_ns
        t_large = impls["bitset"].union(large).elapsed_ns
        assert t_small == pytest.approx(t_large, rel=0.01)

    def test_rb_cost_grows_with_element_count(self, impls):
        small = random_sets(15, 4, DOMAIN, np.random.default_rng(6))
        large = random_sets(15, 2048, DOMAIN, np.random.default_rng(7))
        assert (
            impls["rb"].union(large).elapsed_ns
            > 10 * impls["rb"].union(small).elapsed_ns
        )
