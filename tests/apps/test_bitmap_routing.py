"""Per-bitmap storage routing (dense -> Ambit, sparse -> WAH)."""

import numpy as np
import pytest

from repro.apps.bitmap_index import bitmap_density, route_bitmap
from repro.workloads import random_packed_vector


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestDensity:
    def test_density_measured(self, rng):
        v = random_packed_vector(100_000, rng, density=0.3)
        assert bitmap_density(v, 100_000) == pytest.approx(0.3, abs=0.02)

    def test_empty_bitmap(self):
        v = np.zeros(16, dtype=np.uint64)
        assert bitmap_density(v, 1024) == 0.0

    def test_full_bitmap(self):
        v = np.full(16, np.uint64(2**64 - 1))
        assert bitmap_density(v, 1024) == 1.0


class TestRouting:
    def test_dense_bitmap_goes_to_ambit(self, rng):
        daily = random_packed_vector(100_000, rng, density=0.3)
        assert route_bitmap(daily, 100_000) == "ambit"

    def test_sparse_attribute_stays_wah(self, rng):
        premium = random_packed_vector(100_000, rng, density=0.002)
        assert route_bitmap(premium, 100_000) == "wah-cpu"

    def test_threshold_respected(self, rng):
        v = random_packed_vector(100_000, rng, density=0.05)
        assert route_bitmap(v, 100_000, threshold=0.01) == "ambit"
        assert route_bitmap(v, 100_000, threshold=0.10) == "wah-cpu"

    def test_routing_consistent_with_wah_compression(self, rng):
        # The routing heuristic agrees with actual WAH behaviour: a
        # wah-cpu-routed bitmap really compresses well, an ambit-routed
        # one really does not.
        from repro.apps.compression import wah_encode

        sparse = rng.random(63 * 1000) < 0.002
        dense = rng.random(63 * 1000) < 0.3
        sparse_packed = np.packbits(sparse, bitorder="little")
        dense_packed = np.packbits(dense, bitorder="little")
        assert route_bitmap(
            sparse_packed.view(np.uint8), sparse.size
        ) == "wah-cpu"
        assert wah_encode(sparse).compression_ratio > 4.0
        assert route_bitmap(
            dense_packed.view(np.uint8), dense.size
        ) == "ambit"
        assert wah_encode(dense).compression_ratio < 2.0
