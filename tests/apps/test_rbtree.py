"""Red-black tree: correctness, invariants, instrumentation."""

import numpy as np
import pytest

from repro.apps.rbtree import RedBlackTree


@pytest.fixture
def rng():
    return np.random.default_rng(51)


class TestBasicOps:
    def test_insert_and_search(self):
        tree = RedBlackTree()
        for k in (5, 3, 8, 1):
            assert tree.insert(k)
        assert 5 in tree and 3 in tree and 8 in tree and 1 in tree
        assert 9 not in tree

    def test_duplicate_insert_rejected(self):
        tree = RedBlackTree()
        assert tree.insert(1)
        assert not tree.insert(1)
        assert len(tree) == 1

    def test_len(self):
        tree = RedBlackTree()
        for k in range(10):
            tree.insert(k)
        assert len(tree) == 10

    def test_inorder_sorted(self, rng):
        tree = RedBlackTree()
        keys = rng.permutation(200)
        for k in keys:
            tree.insert(int(k))
        assert list(tree) == sorted(int(k) for k in keys)

    def test_minimum(self):
        tree = RedBlackTree()
        for k in (9, 2, 7):
            tree.insert(k)
        assert tree.minimum() == 2

    def test_minimum_of_empty_raises(self):
        with pytest.raises(KeyError):
            RedBlackTree().minimum()

    def test_delete(self):
        tree = RedBlackTree()
        for k in range(20):
            tree.insert(k)
        assert tree.delete(7)
        assert 7 not in tree
        assert len(tree) == 19

    def test_delete_absent(self):
        tree = RedBlackTree()
        tree.insert(1)
        assert not tree.delete(2)
        assert len(tree) == 1

    def test_delete_root_repeatedly(self):
        tree = RedBlackTree()
        for k in range(10):
            tree.insert(k)
        while len(tree):
            tree.delete(tree.root.key)
        assert list(tree) == []


class TestInvariants:
    def test_invariants_after_random_inserts(self, rng):
        tree = RedBlackTree()
        for k in rng.permutation(500):
            tree.insert(int(k))
            if int(k) % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()

    def test_invariants_after_mixed_workload(self, rng):
        tree = RedBlackTree()
        live = set()
        for _ in range(2000):
            k = int(rng.integers(0, 300))
            if rng.random() < 0.6:
                assert tree.insert(k) == (k not in live)
                live.add(k)
            else:
                assert tree.delete(k) == (k in live)
                live.discard(k)
        tree.check_invariants()
        assert list(tree) == sorted(live)

    def test_sequential_inserts_stay_balanced(self):
        # Sorted input is the classic BST killer; RB trees stay O(log n).
        tree = RedBlackTree()
        for k in range(1024):
            tree.insert(k)
        tree.check_invariants()
        tree.stats.reset()
        assert 600 in tree
        # log2(1024) = 10; RB height bound is 2*log2(n+1) = 20.
        assert tree.stats.node_visits <= 20


class TestInstrumentation:
    def test_visits_counted(self):
        tree = RedBlackTree()
        for k in range(100):
            tree.insert(k)
        tree.stats.reset()
        tree.search(50)
        assert tree.stats.node_visits > 0

    def test_allocations_counted(self):
        tree = RedBlackTree()
        for k in range(10):
            tree.insert(k)
        assert tree.stats.allocations == 10

    def test_rotations_happen(self):
        tree = RedBlackTree()
        for k in range(50):
            tree.insert(k)
        assert tree.stats.rotations > 0

    def test_search_cost_logarithmic(self, rng):
        small, large = RedBlackTree(), RedBlackTree()
        for k in range(64):
            small.insert(k)
        for k in range(65536):
            large.insert(k)
        small.stats.reset()
        large.stats.reset()
        for k in (0, 31, 63):
            small.search(k)
            large.search(k)
        # 1024x the keys should cost only ~2-3x the visits.
        assert large.stats.node_visits <= 4 * small.stats.node_visits
