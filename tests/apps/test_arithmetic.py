"""Bit-serial arithmetic (MAJ-based adders) and SUM aggregation."""

import numpy as np
import pytest

from repro.apps.arithmetic import add_columns, subtract_columns, sum_aggregate
from repro.apps.bitweaving import BitWeavingColumn, reference_range_mask
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext


@pytest.fixture
def rng():
    return np.random.default_rng(131)


def _col(values, bits):
    return BitWeavingColumn.encode(np.asarray(values, dtype=np.uint64), bits)


class TestAddition:
    def test_small_known_values(self):
        a = _col([1, 2, 3, 7], 3)
        b = _col([1, 5, 4, 7], 3)
        out = add_columns(CpuContext(), a, b)
        assert list(out.decode()) == [2, 7, 7, 14]
        assert out.bits == 4  # one carry plane

    def test_random_columns(self, rng):
        va = rng.integers(0, 1 << 10, size=3000, dtype=np.uint64)
        vb = rng.integers(0, 1 << 10, size=3000, dtype=np.uint64)
        out = add_columns(AmbitContext(), _col(va, 10), _col(vb, 10))
        assert np.array_equal(out.decode(), va + vb)

    def test_mixed_widths(self, rng):
        va = rng.integers(0, 1 << 12, size=500, dtype=np.uint64)
        vb = rng.integers(0, 1 << 4, size=500, dtype=np.uint64)
        out = add_columns(CpuContext(), _col(va, 12), _col(vb, 4))
        assert np.array_equal(out.decode(), va + vb)

    def test_carry_chain_all_ones(self):
        # 0b1111 + 1 exercises a full carry ripple.
        a = _col([15] * 100, 4)
        b = _col([1] * 100, 4)
        out = add_columns(CpuContext(), a, b)
        assert (out.decode() == 16).all()

    def test_cost_scales_with_bits_not_rows_on_ambit(self, rng):
        va = rng.integers(0, 1 << 8, size=65536, dtype=np.uint64)
        ctx8 = AmbitContext()
        add_columns(ctx8, _col(va, 8), _col(va, 8))
        ctx16 = AmbitContext()
        va16 = rng.integers(0, 1 << 16, size=65536, dtype=np.uint64)
        add_columns(ctx16, _col(va16, 16), _col(va16, 16))
        assert ctx16.elapsed_ns == pytest.approx(2 * ctx8.elapsed_ns, rel=0.15)

    def test_ambit_and_cpu_agree(self, rng):
        va = rng.integers(0, 1 << 6, size=640, dtype=np.uint64)
        vb = rng.integers(0, 1 << 6, size=640, dtype=np.uint64)
        out_cpu = add_columns(CpuContext(), _col(va, 6), _col(vb, 6))
        out_amb = add_columns(AmbitContext(), _col(va, 6), _col(vb, 6))
        assert np.array_equal(out_cpu.decode(), out_amb.decode())

    def test_row_count_mismatch(self, rng):
        with pytest.raises(SimulationError):
            add_columns(CpuContext(), _col([1, 2], 2), _col([1], 2))


class TestSubtraction:
    def test_known_values(self):
        a = _col([9, 7, 5, 15], 4)
        b = _col([4, 7, 1, 0], 4)
        out = subtract_columns(CpuContext(), a, b)
        assert list(out.decode()) == [5, 0, 4, 15]
        assert out.bits == 4

    def test_random(self, rng):
        va = rng.integers(1 << 9, 1 << 10, size=2000, dtype=np.uint64)
        vb = rng.integers(0, 1 << 9, size=2000, dtype=np.uint64)
        out = subtract_columns(AmbitContext(), _col(va, 10), _col(vb, 10))
        assert np.array_equal(out.decode(), va - vb)

    def test_narrower_subtrahend(self, rng):
        va = rng.integers(1 << 6, 1 << 8, size=300, dtype=np.uint64)
        vb = rng.integers(0, 1 << 4, size=300, dtype=np.uint64)
        out = subtract_columns(CpuContext(), _col(va, 8), _col(vb, 4))
        assert np.array_equal(out.decode(), va - vb)

    def test_wider_subtrahend_rejected(self, rng):
        with pytest.raises(SimulationError):
            subtract_columns(CpuContext(), _col([1], 2), _col([1], 4))


class TestSumAggregate:
    def test_unmasked_sum(self, rng):
        values = rng.integers(0, 1 << 12, size=5000, dtype=np.uint64)
        total = sum_aggregate(CpuContext(), _col(values, 12))
        assert total == int(values.sum())

    def test_masked_sum_is_a_filtered_aggregate(self, rng):
        # select sum(v) where lo <= v <= hi -- the column-store SUM.
        values = rng.integers(0, 256, size=4000, dtype=np.uint64)
        column = _col(values, 8)
        lo, hi = 50, 180
        mask = reference_range_mask(column, lo, hi)
        total = sum_aggregate(AmbitContext(), column, mask=mask)
        expected = int(values[(values >= lo) & (values <= hi)].sum())
        assert total == expected

    def test_empty_mask_sums_to_zero(self, rng):
        values = rng.integers(1, 16, size=640, dtype=np.uint64)
        column = _col(values, 4)
        mask = np.zeros_like(column.planes[0])
        assert sum_aggregate(CpuContext(), column, mask=mask) == 0

    def test_mask_shape_checked(self, rng):
        column = _col(rng.integers(0, 4, size=64, dtype=np.uint64), 2)
        with pytest.raises(SimulationError):
            sum_aggregate(CpuContext(), column, mask=np.zeros(99, dtype=np.uint64))

    def test_cheaper_than_adding_on_ambit(self, rng):
        # SUM via weighted popcounts needs one AND per plane; a full
        # tree of additions would need ~3 ops per plane per level.
        values = rng.integers(0, 1 << 8, size=100_000, dtype=np.uint64)
        column = _col(values, 8)
        mask = reference_range_mask(column, 0, 255)
        ctx = AmbitContext()
        sum_aggregate(ctx, column, mask=mask)
        assert ctx.breakdown["sum"] > 0


class TestMajOnDevice:
    def test_maj_sum_identity_on_functional_device(self):
        """Full-adder identity through the real TRA: for every bit,
        a + b + c == 2 * MAJ(a,b,c) + XOR(a,b,c)."""
        from repro.core.device import AmbitDevice
        from repro.core.microprograms import BulkOp
        from repro.dram.chip import RowLocation
        from repro.dram.geometry import small_test_geometry

        device = AmbitDevice(geometry=small_test_geometry(rows=24, row_bytes=64))
        rng = np.random.default_rng(5)
        words = device.geometry.subarray.words_per_row
        a, b, c = (rng.integers(0, 2**64, size=words, dtype=np.uint64)
                   for _ in range(3))
        for i, v in enumerate((a, b, c)):
            device.write_row(RowLocation(0, 0, i), v)
        device.bbop_row(BulkOp.MAJ, RowLocation(0, 0, 3), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1), RowLocation(0, 0, 2))
        maj = device.read_row(RowLocation(0, 0, 3))
        xor3 = a ^ b ^ c
        for word in range(words):
            for bit in range(64):
                s = sum(int(x[word]) >> bit & 1 for x in (a, b, c))
                assert s == 2 * (int(maj[word]) >> bit & 1) + (
                    int(xor3[word]) >> bit & 1
                )
