"""Graph processing (BFS/triangles) and WAH compression substrates."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.compression import (
    WahBitmap,
    ambit_or_wah_decision,
    wah_and,
    wah_decode,
    wah_encode,
    wah_or,
)
from repro.apps.graph import BitGraph, bfs_levels, reachable_set, triangle_count
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext


@pytest.fixture
def rng():
    return np.random.default_rng(101)


def _random_digraph(n, p, rng):
    edges = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < p
    ]
    return edges


class TestBitGraph:
    def test_from_edges_and_neighbors(self):
        g = BitGraph.from_edges(5, [(0, 1), (0, 3), (2, 4)])
        assert g.neighbors(0) == [1, 3]
        assert g.neighbors(2) == [4]
        assert g.neighbors(1) == []

    def test_edge_bounds(self):
        with pytest.raises(SimulationError):
            BitGraph.from_edges(3, [(0, 3)])

    def test_empty_graph_rejected(self):
        with pytest.raises(SimulationError):
            BitGraph.from_edges(0, [])


class TestBfs:
    def test_levels_match_networkx(self, rng):
        n = 60
        edges = _random_digraph(n, 0.08, rng)
        g = BitGraph.from_edges(n, edges)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        assert bfs_levels(CpuContext(), g, 0) == dict(expected)

    def test_ambit_and_cpu_agree(self, rng):
        n = 40
        edges = _random_digraph(n, 0.1, rng)
        g = BitGraph.from_edges(n, edges)
        assert bfs_levels(CpuContext(), g, 3) == bfs_levels(
            AmbitContext(), g, 3
        )

    def test_unreachable_nodes_absent(self):
        g = BitGraph.from_edges(4, [(0, 1)])
        levels = bfs_levels(CpuContext(), g, 0)
        assert set(levels) == {0, 1}

    def test_reachable_set(self):
        g = BitGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        assert reachable_set(CpuContext(), g, 0) == [0, 1, 2]

    def test_chain_levels(self):
        g = BitGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert bfs_levels(CpuContext(), g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_source_bounds(self):
        g = BitGraph.from_edges(2, [(0, 1)])
        with pytest.raises(SimulationError):
            bfs_levels(CpuContext(), g, 5)


class TestTriangles:
    def test_matches_networkx(self, rng):
        n = 30
        nxg = nx.gnp_random_graph(n, 0.3, seed=7)
        edges = []
        for u, v in nxg.edges:
            edges.append((u, v))
            edges.append((v, u))
        g = BitGraph.from_edges(n, edges)
        expected = sum(nx.triangles(nxg).values()) // 3
        assert triangle_count(CpuContext(), g) == expected

    def test_triangle_free(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 1)]
        g = BitGraph.from_edges(3, edges)
        assert triangle_count(CpuContext(), g) == 0

    def test_single_triangle(self):
        edges = []
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            edges += [(u, v), (v, u)]
        g = BitGraph.from_edges(3, edges)
        assert triangle_count(CpuContext(), g) == 1


class TestWah:
    @pytest.mark.parametrize("density", [0.0, 0.001, 0.1, 0.5, 0.999, 1.0])
    def test_roundtrip(self, rng, density):
        bits = rng.random(4000) < density
        assert np.array_equal(wah_decode(wah_encode(bits)), bits)

    def test_roundtrip_non_group_aligned(self, rng):
        bits = rng.random(1000) < 0.5  # 1000 % 63 != 0
        assert np.array_equal(wah_decode(wah_encode(bits)), bits)

    def test_sparse_compresses(self, rng):
        sparse = rng.random(63 * 200) < 0.001
        assert wah_encode(sparse).compression_ratio > 3.0

    def test_dense_random_does_not_compress(self, rng):
        dense = rng.random(63 * 200) < 0.5
        assert wah_encode(dense).compression_ratio == pytest.approx(1.0)

    def test_all_zeros_one_word(self):
        bitmap = wah_encode(np.zeros(63 * 1000, dtype=bool))
        assert bitmap.compressed_words == 1

    def test_and_or_match_numpy(self, rng):
        a = rng.random(3000) < 0.02
        b = rng.random(3000) < 0.02
        ea, eb = wah_encode(a), wah_encode(b)
        assert np.array_equal(wah_decode(wah_and(ea, eb)), a & b)
        assert np.array_equal(wah_decode(wah_or(ea, eb)), a | b)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(SimulationError):
            wah_and(
                wah_encode(rng.random(100) < 0.5),
                wah_encode(rng.random(200) < 0.5),
            )

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            wah_encode(np.array([], dtype=bool))

    def test_corrupt_stream_detected(self, rng):
        bitmap = wah_encode(rng.random(630) < 0.5)
        bad = WahBitmap(nbits=bitmap.nbits + 63, words=bitmap.words)
        with pytest.raises(SimulationError):
            wah_decode(bad)

    def test_routing_decision(self, rng):
        sparse = wah_encode(rng.random(63 * 500) < 0.0005)
        dense = wah_encode(rng.random(63 * 500) < 0.5)
        assert ambit_or_wah_decision(sparse) == "wah-cpu"
        assert ambit_or_wah_decision(dense) == "ambit"
