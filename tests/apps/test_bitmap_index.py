"""Bitmap index workload (Figure 10)."""

import numpy as np
import pytest

from repro.apps import bitmap_index as bi
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext

USERS = 100_000


@pytest.fixture(scope="module")
def workload():
    return bi.generate_workload(USERS, weeks=4, seed=3)


class TestWorkloadGeneration:
    def test_shape(self, workload):
        assert workload.users == USERS
        assert workload.days == 28
        assert workload.male.dtype == np.uint64

    def test_deterministic(self):
        a = bi.generate_workload(1000, 2, seed=5)
        b = bi.generate_workload(1000, 2, seed=5)
        assert all(
            np.array_equal(x, y)
            for x, y in zip(a.daily_activity, b.daily_activity)
        )
        assert np.array_equal(a.male, b.male)

    def test_padding_bits_zero(self):
        wl = bi.generate_workload(100, 1, seed=1)  # 100 bits -> 128-bit pad
        bits = np.unpackbits(wl.male.view(np.uint8), bitorder="little")
        assert bits[100:].sum() == 0

    def test_activity_probability_respected(self, workload):
        density = np.mean(
            [
                np.unpackbits(d.view(np.uint8)).sum() / USERS
                for d in workload.daily_activity
            ]
        )
        assert 0.25 < density < 0.35

    def test_invalid_shape(self):
        with pytest.raises(SimulationError):
            bi.generate_workload(0, 1)


class TestQuery:
    def test_baseline_matches_reference(self, workload):
        ref = bi.reference_query(workload, 3)
        got = bi.run_query(CpuContext(), workload, 3)
        assert got.unique_active_every_week == ref.unique_active_every_week
        assert got.male_active_per_week == ref.male_active_per_week

    def test_ambit_matches_reference(self, workload):
        ref = bi.reference_query(workload, 3)
        got = bi.run_query(AmbitContext(), workload, 3)
        assert got.unique_active_every_week == ref.unique_active_every_week
        assert got.male_active_per_week == ref.male_active_per_week

    def test_operation_counts(self, workload):
        # 6w ORs, 2w-1 ANDs, w+1 bitcounts (Section 8.1).
        for weeks in (2, 3, 4):
            ctx = CpuContext()
            bi.run_query(ctx, workload, weeks)
            vector_bytes = workload.male.nbytes
            per_op_traffic = 3 * vector_bytes
            rate = ctx.cpu.stream_gbps(per_op_traffic)
            or_traffic = ctx.breakdown["or"] * rate
            assert or_traffic == pytest.approx(6 * weeks * per_op_traffic)
            and_traffic = ctx.breakdown["and"] * rate
            assert and_traffic == pytest.approx((2 * weeks - 1) * per_op_traffic)
            count_bytes = (
                ctx.breakdown["bitcount"] * ctx.cpu.config.popcount_gbps
            )
            assert count_bytes == pytest.approx((weeks + 1) * vector_bytes)

    def test_too_many_weeks_rejected(self, workload):
        with pytest.raises(SimulationError):
            bi.run_query(CpuContext(), workload, 5)

    def test_unique_at_most_weekly_counts(self, workload):
        result = bi.reference_query(workload, 4)
        weekly_active = [
            int(np.unpackbits(w.view(np.uint8)).sum())
            for w in [workload.male]
        ]
        assert result.unique_active_every_week <= USERS

    def test_speedup_in_paper_band(self):
        # Figure 10: 5.4X - 6.6X for memory-resident working sets.
        workload = bi.generate_workload(8_000_000, 4, seed=2)
        base = bi.run_query(CpuContext(), workload, 4)
        ambit = bi.run_query(AmbitContext(), workload, 4)
        speedup = base.elapsed_ns / ambit.elapsed_ns
        assert 4.0 <= speedup <= 9.0

    def test_speedup_grows_with_weeks(self):
        workload = bi.generate_workload(8_000_000, 4, seed=2)
        speedups = []
        for w in (2, 4):
            base = bi.run_query(CpuContext(), workload, w)
            ambit = bi.run_query(AmbitContext(), workload, w)
            speedups.append(base.elapsed_ns / ambit.elapsed_ns)
        assert speedups[1] > speedups[0]
