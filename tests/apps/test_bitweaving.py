"""BitWeaving-V column layout and range scans (Figure 11)."""

import numpy as np
import pytest

from repro.apps.bitweaving import (
    BitWeavingColumn,
    reference_range_mask,
    scan_range_ambit,
    scan_range_baseline,
)
from repro.errors import SimulationError
from repro.sim import AmbitContext, CpuContext


@pytest.fixture
def rng():
    return np.random.default_rng(41)


class TestEncoding:
    def test_roundtrip(self, rng):
        values = rng.integers(0, 1 << 12, size=1000, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 12)
        assert np.array_equal(col.decode(), values)

    def test_roundtrip_odd_row_count(self, rng):
        values = rng.integers(0, 1 << 7, size=777, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 7)
        assert np.array_equal(col.decode(), values)

    def test_plane_count_and_order(self):
        values = np.array([0b100, 0b001], dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 3)
        assert len(col.planes) == 3
        msb = np.unpackbits(col.planes[0].view(np.uint8), bitorder="little")
        assert msb[0] == 1 and msb[1] == 0  # plane 0 is the MSB

    def test_value_overflow_rejected(self):
        with pytest.raises(SimulationError):
            BitWeavingColumn.encode(np.array([4], dtype=np.uint64), 2)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            BitWeavingColumn.encode(np.array([], dtype=np.uint64), 4)

    def test_bad_bits_rejected(self):
        with pytest.raises(SimulationError):
            BitWeavingColumn.encode(np.array([1], dtype=np.uint64), 0)

    def test_total_bytes(self, rng):
        col = BitWeavingColumn.encode(
            rng.integers(0, 16, size=640, dtype=np.uint64), 4
        )
        assert col.total_bytes == 4 * col.plane_bytes


class TestScans:
    @pytest.mark.parametrize("bits", [1, 4, 8, 13])
    def test_ambit_scan_counts(self, rng, bits):
        values = rng.integers(0, 1 << bits, size=2000, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, bits)
        c1 = int(rng.integers(0, 1 << bits))
        c2 = int(rng.integers(c1, 1 << bits))
        _, count = scan_range_ambit(AmbitContext(), col, c1, c2)
        assert count == int(((values >= c1) & (values <= c2)).sum())

    def test_baseline_scan_counts(self, rng):
        values = rng.integers(0, 256, size=3000, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 8)
        _, count = scan_range_baseline(CpuContext(), col, 50, 180)
        assert count == int(((values >= 50) & (values <= 180)).sum())

    def test_masks_identical(self, rng):
        values = rng.integers(0, 64, size=1280, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 6)
        mask_a, _ = scan_range_ambit(AmbitContext(), col, 10, 40)
        mask_b, _ = scan_range_baseline(CpuContext(), col, 10, 40)
        assert np.array_equal(mask_a, mask_b)
        assert np.array_equal(mask_a, reference_range_mask(col, 10, 40))

    def test_degenerate_full_range(self, rng):
        values = rng.integers(0, 16, size=640, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 4)
        _, count = scan_range_ambit(AmbitContext(), col, 0, 15)
        assert count == 640

    def test_empty_range(self, rng):
        values = np.full(640, 7, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 4)
        _, count = scan_range_ambit(AmbitContext(), col, 8, 9)
        assert count == 0

    def test_point_query(self, rng):
        values = rng.integers(0, 32, size=640, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 5)
        _, count = scan_range_ambit(AmbitContext(), col, 13, 13)
        assert count == int((values == 13).sum())

    def test_invalid_range_rejected(self, rng):
        col = BitWeavingColumn.encode(np.array([1], dtype=np.uint64), 4)
        with pytest.raises(SimulationError):
            scan_range_ambit(AmbitContext(), col, 9, 3)
        with pytest.raises(SimulationError):
            scan_range_baseline(CpuContext(), col, 0, 16)


class TestFigure11Shape:
    def test_speedup_grows_with_bits(self, rng):
        speedups = {}
        for bits in (4, 16, 32):
            values = rng.integers(0, 1 << bits, size=512_000, dtype=np.uint64)
            col = BitWeavingColumn.encode(values, bits)
            c1, c2 = (1 << bits) // 4, (3 << bits) // 4
            base, ambit = CpuContext(), AmbitContext()
            scan_range_baseline(base, col, c1, c2)
            scan_range_ambit(ambit, col, c1, c2)
            speedups[bits] = base.elapsed_ns / ambit.elapsed_ns
        assert speedups[4] < speedups[16] < speedups[32]

    def test_cache_spill_jump(self, rng):
        # The same b: small row count fits in L2 (fast baseline),
        # larger spills to DRAM -> the Figure 11 jump.
        bits = 8
        speedups = {}
        for rows in (500_000, 4_000_000):
            values = rng.integers(0, 1 << bits, size=rows, dtype=np.uint64)
            col = BitWeavingColumn.encode(values, bits)
            base, ambit = CpuContext(), AmbitContext()
            scan_range_baseline(base, col, 10, 200)
            scan_range_ambit(ambit, col, 10, 200)
            speedups[rows] = base.elapsed_ns / ambit.elapsed_ns
        assert speedups[4_000_000] > 1.5 * speedups[500_000]

    def test_speedups_in_paper_band(self, rng):
        # Paper: 1.8X - 11.8X over the (b, r) sweep.
        values = rng.integers(0, 1 << 16, size=2_000_000, dtype=np.uint64)
        col = BitWeavingColumn.encode(values, 16)
        base, ambit = CpuContext(), AmbitContext()
        scan_range_baseline(base, col, 1000, 60000)
        scan_range_ambit(ambit, col, 1000, 60000)
        assert 1.5 <= base.elapsed_ns / ambit.elapsed_ns <= 13.0
