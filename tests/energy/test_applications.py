"""Application-level energy accounting."""

import pytest

from repro.core.microprograms import BulkOp
from repro.energy.accounting import ambit_op_energy_nj_per_kb
from repro.energy.applications import (
    WorkloadEnergy,
    ambit_op_energy_nj,
    bitmap_index_query_energy,
)
from repro.errors import SimulationError


class TestClosedFormAmbitEnergy:
    @pytest.mark.parametrize(
        "op", [BulkOp.NOT, BulkOp.AND, BulkOp.OR, BulkOp.NAND, BulkOp.XOR]
    )
    def test_matches_trace_measurement(self, op):
        # The closed form must agree with folding a real command trace.
        closed = ambit_op_energy_nj(op, 8192) / 8  # nJ/KB
        measured = ambit_op_energy_nj_per_kb(op)
        assert closed == pytest.approx(measured, rel=0.01)

    def test_maj_costs_like_and(self):
        assert ambit_op_energy_nj(BulkOp.MAJ) == pytest.approx(
            ambit_op_energy_nj(BulkOp.AND)
        )


class TestWorkloadEnergy:
    def test_accumulates_per_row(self):
        w = WorkloadEnergy(vector_bytes=3 * 8192)
        w.add_op(BulkOp.AND, 2)
        assert w.operations == 2
        assert w.ambit_nj == pytest.approx(
            2 * 3 * ambit_op_energy_nj(BulkOp.AND)
        )

    def test_reduction_in_table3_regime(self):
        w = WorkloadEnergy(vector_bytes=1 << 20)
        w.add_op(BulkOp.AND, 10)
        assert 35 <= w.reduction <= 50  # Table 3 and/or: ~43x

    def test_no_ops_rejected(self):
        with pytest.raises(SimulationError):
            _ = WorkloadEnergy(vector_bytes=8192).reduction

    def test_bad_sizes_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadEnergy(vector_bytes=0)
        with pytest.raises(SimulationError):
            WorkloadEnergy(vector_bytes=100).add_op(BulkOp.AND, -1)


class TestBitmapQueryEnergy:
    def test_operation_count(self):
        e = bitmap_index_query_energy(users=8_000_000, weeks=4)
        assert e.operations == 6 * 4 + 2 * 4 - 1  # 6w OR + (2w-1) AND

    def test_reduction_near_and_or_row(self):
        # The query is all AND/OR, so the workload reduction sits at the
        # Table 3 and/or figure (~42-44x).
        e = bitmap_index_query_energy(users=16_000_000, weeks=3)
        assert e.reduction == pytest.approx(41.6, rel=0.10)

    def test_energy_scales_with_users_and_weeks(self):
        small = bitmap_index_query_energy(8_000_000, 2)
        wide = bitmap_index_query_energy(8_000_000, 4)
        big = bitmap_index_query_energy(16_000_000, 2)
        assert wide.ambit_nj > small.ambit_nj
        assert big.ambit_nj == pytest.approx(2 * small.ambit_nj, rel=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            bitmap_index_query_energy(0, 2)
