"""Energy model: Table 3 structure and the command-trace fold."""

import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import small_test_geometry
from repro.energy.accounting import (
    OP_CLASSES,
    TABLE3_PAPER,
    ambit_op_energy_nj_per_kb,
    format_table3,
    table3_experiment,
)
from repro.energy.power_model import (
    DEFAULT_ENERGY,
    EnergyParameters,
    ddr_op_energy_nj_per_kb,
    trace_energy_nj,
)
from repro.errors import ConfigError


class TestParameters:
    def test_extra_wordline_surcharge(self):
        p = EnergyParameters()
        one = p.activate_nj(1, 8192)
        three = p.activate_nj(3, 8192)
        assert three == pytest.approx(one * 1.44)  # +22% per extra wordline

    def test_scales_with_row_size(self):
        p = EnergyParameters()
        assert p.activate_nj(1, 4096) == pytest.approx(p.activate_nj(1, 8192) / 2)

    def test_transfer_energy(self):
        p = EnergyParameters(channel_nj_per_kb=46.0)
        assert p.transfer_nj(1024) == pytest.approx(46.0)

    def test_invalid_constants(self):
        with pytest.raises(ConfigError):
            EnergyParameters(act_nj=0)
        with pytest.raises(ConfigError):
            EnergyParameters(extra_wordline_factor=-0.1)


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_experiment()

    def test_not_energy_near_paper(self, rows):
        assert rows["not"].ambit_nj_per_kb == pytest.approx(1.6, rel=0.10)
        assert rows["not"].ddr3_nj_per_kb == pytest.approx(93.7, rel=0.10)

    def test_and_or_energy_near_paper(self, rows):
        assert rows["and/or"].ambit_nj_per_kb == pytest.approx(3.2, rel=0.10)
        assert rows["and/or"].ddr3_nj_per_kb == pytest.approx(137.9, rel=0.10)

    def test_nand_nor_energy_near_paper(self, rows):
        assert rows["nand/nor"].ambit_nj_per_kb == pytest.approx(4.0, rel=0.10)

    def test_xor_xnor_energy_near_paper(self, rows):
        assert rows["xor/xnor"].ambit_nj_per_kb == pytest.approx(5.5, rel=0.10)

    def test_reductions_in_paper_range(self, rows):
        # Section 7: 25.1X - 59.5X reduction.
        for row in rows.values():
            assert 20.0 <= row.reduction <= 70.0

    def test_not_is_cheapest_xor_most_expensive(self, rows):
        assert (
            rows["not"].ambit_nj_per_kb
            < rows["and/or"].ambit_nj_per_kb
            < rows["nand/nor"].ambit_nj_per_kb
            < rows["xor/xnor"].ambit_nj_per_kb
        )

    def test_two_operand_ddr_cost_uniform(self, rows):
        # The DDR3 column is identical for all two-operand ops.
        assert rows["and/or"].ddr3_nj_per_kb == pytest.approx(
            rows["xor/xnor"].ddr3_nj_per_kb
        )

    def test_format_contains_paper_columns(self, rows):
        text = format_table3(rows)
        assert "paper DDR3" in text and "xor/xnor" in text

    def test_paper_reference_data(self):
        assert set(TABLE3_PAPER) == set(OP_CLASSES)


class TestTraceFold:
    def test_energy_independent_of_row_size_per_kb(self):
        small = AmbitDevice(geometry=small_test_geometry(rows=24, row_bytes=64))
        large = AmbitDevice(geometry=small_test_geometry(rows=24, row_bytes=512))
        e_small = ambit_op_energy_nj_per_kb(BulkOp.AND, small)
        e_large = ambit_op_energy_nj_per_kb(BulkOp.AND, large)
        assert e_small == pytest.approx(e_large)

    def test_empty_trace_zero_energy(self):
        device = AmbitDevice(geometry=small_test_geometry())
        device.reset_stats()
        assert trace_energy_nj(device.chip.trace, device.row_bytes) == 0.0

    def test_reads_writes_charged(self):
        device = AmbitDevice(geometry=small_test_geometry())
        device.chip.activate(0, 0, 0)
        device.chip.read_word(0, 0)
        base = trace_energy_nj(device.chip.trace, device.row_bytes)
        device.chip.read_word(0, 1)
        more = trace_energy_nj(device.chip.trace, device.row_bytes)
        assert more > base

    def test_ddr_copy_vs_op_traffic(self):
        # not/copy move 2 rows; two-operand ops move 3.
        assert ddr_op_energy_nj_per_kb(BulkOp.AND) > ddr_op_energy_nj_per_kb(
            BulkOp.NOT
        )
        assert ddr_op_energy_nj_per_kb(BulkOp.COPY) == pytest.approx(
            ddr_op_energy_nj_per_kb(BulkOp.NOT)
        )
