"""Shared fixtures: small geometries keep the functional model fast
while exercising identical code paths to the full-size device."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.dram.geometry import DramGeometry, SubarrayGeometry, small_test_geometry


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every test must leave zero shared-memory segments behind.

    A leaked ``/dev/shm`` entry survives the interpreter and silently
    eats physical memory, so leak checking is an invariant, not a
    feature test: after each test (and a GC pass, to exercise the
    finalizer path), no segment created by this process may remain
    registered or on disk.
    """
    from repro.parallel.shm import live_segment_names, system_segments

    before = live_segment_names()
    yield
    import gc

    gc.collect()
    leaked = live_segment_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    assert not system_segments(), (
        f"stale /dev/shm entries: {system_segments()}"
    )


@pytest.fixture
def tiny_geo() -> DramGeometry:
    """2 banks x 2 subarrays x 32 rows x 64-byte rows."""
    return small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)


@pytest.fixture
def device(tiny_geo) -> AmbitDevice:
    return AmbitDevice(geometry=tiny_geo)


@pytest.fixture
def command_log(device):
    """Structured command capture on ``device``.

    Lets any test assert exact command sequences and counter deltas::

        device.bbop_row(BulkOp.AND, dk, di, dj)
        assert command_log.lines()[0] == "ACT 0 0 0"
        assert command_log.counters().tras == 1

    ``lines()``/``text()`` render the :mod:`repro.dram.trace_io` format
    (WR lines include payloads); ``counters()`` returns the
    :class:`repro.obs.CounterSet` delta; ``clear()`` resets both.
    """
    from repro.obs import CommandLog

    log = CommandLog(device)
    yield log
    log.detach()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def words(tiny_geo) -> int:
    return tiny_geo.subarray.words_per_row


def random_row(rng: np.random.Generator, words: int) -> np.ndarray:
    """A random packed row image."""
    return rng.integers(0, 2**63, size=words, dtype=np.uint64) | (
        rng.integers(0, 2, size=words, dtype=np.uint64) << np.uint64(63)
    )


@pytest.fixture
def make_row(rng, words):
    """Factory fixture producing random packed rows of the tiny geometry."""

    def _make() -> np.ndarray:
        return random_row(rng, words)

    return _make


@pytest.fixture
def medium_geo() -> DramGeometry:
    """Larger rows for tests that need several uint64 words per row."""
    return DramGeometry(
        banks=2,
        subarrays_per_bank=2,
        subarray=SubarrayGeometry(rows=64, row_bytes=512),
    )
