"""Execution contexts: functional equivalence + cost structure."""

import numpy as np
import pytest

from repro.core.microprograms import BulkOp
from repro.errors import ConfigError, SimulationError
from repro.sim.cpu import CpuModel, CpuModelConfig
from repro.sim.system import AmbitContext, AmbitMemoryConfig, CpuContext


@pytest.fixture
def rng():
    return np.random.default_rng(17)


def _vec(rng, words=4096):
    return rng.integers(0, 2**63, size=words, dtype=np.uint64)


class TestCpuModel:
    def test_bandwidth_tiers(self):
        cpu = CpuModel()
        cfg = cpu.config
        assert cpu.stream_gbps(cfg.l1_bytes) == cfg.l1_stream_gbps
        assert cpu.stream_gbps(cfg.l2_bytes) == cfg.l2_stream_gbps
        assert cpu.stream_gbps(cfg.l2_bytes + 1) == cfg.dram_stream_gbps

    def test_popcount_compute_bound(self):
        cpu = CpuModel()
        # At default rates popcount is slower than any stream tier.
        assert cpu.popcount_ns(1024) == pytest.approx(
            1024 / cpu.config.popcount_gbps
        )

    def test_stream_time(self):
        cpu = CpuModel()
        big = cpu.config.l2_bytes * 4
        assert cpu.stream_ns(big, big) == pytest.approx(
            big / cpu.config.dram_stream_gbps
        )

    def test_negative_traffic_rejected(self):
        with pytest.raises(ConfigError):
            CpuModel().stream_ns(-1, 100)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            CpuModelConfig(dram_stream_gbps=0)
        with pytest.raises(ConfigError):
            CpuModelConfig(l1_bytes=4 * 1024 * 1024)

    def test_alu_and_pointer_chase(self):
        cpu = CpuModel()
        assert cpu.alu_ns(16) == pytest.approx(2 / 4.0)
        assert cpu.pointer_chase_ns(10) == pytest.approx(150.0)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "op", [BulkOp.AND, BulkOp.OR, BulkOp.XOR, BulkOp.NAND, BulkOp.NOR,
               BulkOp.XNOR]
    )
    def test_contexts_compute_identically(self, rng, op):
        a, b = _vec(rng), _vec(rng)
        cpu_out = CpuContext().bulk_op(op, a, b)
        ambit_out = AmbitContext().bulk_op(op, a, b)
        assert np.array_equal(cpu_out, ambit_out)

    def test_not_and_copy(self, rng):
        a = _vec(rng)
        assert np.array_equal(CpuContext().bulk_op(BulkOp.NOT, a), ~a)
        assert np.array_equal(AmbitContext().bulk_op(BulkOp.COPY, a), a)

    def test_popcount_equal(self, rng):
        a = _vec(rng)
        assert CpuContext().popcount(a) == AmbitContext().popcount(a)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(SimulationError):
            CpuContext().bulk_op(BulkOp.AND, _vec(rng, 4), _vec(rng, 8))

    def test_arity_enforced(self, rng):
        with pytest.raises(SimulationError):
            CpuContext().bulk_op(BulkOp.NOT, _vec(rng), _vec(rng))


class TestCostStructure:
    def test_ambit_bitwise_much_faster_on_large_vectors(self, rng):
        a, b = _vec(rng, 1 << 16), _vec(rng, 1 << 16)  # 512 KB
        cpu_ctx, ambit_ctx = CpuContext(), AmbitContext()
        cpu_ctx.bulk_op(BulkOp.AND, a, b)
        ambit_ctx.bulk_op(BulkOp.AND, a, b)
        assert ambit_ctx.elapsed_ns < cpu_ctx.elapsed_ns / 10

    def test_popcount_costs_the_same_on_both(self, rng):
        a = _vec(rng, 1 << 14)
        cpu_ctx, ambit_ctx = CpuContext(), AmbitContext()
        cpu_ctx.popcount(a)
        ambit_ctx.popcount(a)
        assert cpu_ctx.elapsed_ns == pytest.approx(ambit_ctx.elapsed_ns)

    def test_cpu_cost_scales_with_traffic(self, rng):
        a, b = _vec(rng, 1 << 16), _vec(rng, 1 << 16)
        ctx = CpuContext()
        ctx.bulk_op(BulkOp.NOT, a)
        t_not = ctx.elapsed_ns
        ctx2 = CpuContext()
        ctx2.bulk_op(BulkOp.AND, a, b)
        assert ctx2.elapsed_ns == pytest.approx(t_not * 1.5)

    def test_ambit_cost_scales_with_rows(self, rng):
        mem = AmbitMemoryConfig(banks=1)
        one_row = AmbitContext(memory=mem)
        one_row.bulk_op(BulkOp.AND, _vec(rng, 1024), _vec(rng, 1024))
        two_rows = AmbitContext(memory=mem)
        two_rows.bulk_op(BulkOp.AND, _vec(rng, 2048), _vec(rng, 2048))
        assert two_rows.elapsed_ns > one_row.elapsed_ns

    def test_banks_give_parallelism(self, rng):
        a, b = _vec(rng, 1 << 15), _vec(rng, 1 << 15)
        few = AmbitContext(memory=AmbitMemoryConfig(banks=1))
        many = AmbitContext(memory=AmbitMemoryConfig(banks=16))
        few.bulk_op(BulkOp.AND, a, b)
        many.bulk_op(BulkOp.AND, a, b)
        assert many.elapsed_ns < few.elapsed_ns

    def test_dirty_cpu_data_charges_flush(self, rng):
        a, b = _vec(rng, 1 << 14), _vec(rng, 1 << 14)
        clean = AmbitContext()
        clean.bulk_op(BulkOp.AND, a, b)
        dirty = AmbitContext()
        dirty.mark_cpu_written(a.nbytes)
        dirty.mark_cpu_written(b.nbytes)
        dirty.bulk_op(BulkOp.AND, a, b)
        assert dirty.breakdown["coherence"] > clean.breakdown["coherence"]
        assert dirty.coherence_log.lines_written_back > 0

    def test_flush_happens_once(self, rng):
        a, b = _vec(rng, 1 << 14), _vec(rng, 1 << 14)
        ctx = AmbitContext()
        ctx.mark_cpu_written(a.nbytes)
        ctx.bulk_op(BulkOp.AND, a, b)
        first_writebacks = ctx.coherence_log.lines_written_back
        ctx.bulk_op(BulkOp.AND, a, b)
        assert ctx.coherence_log.lines_written_back == first_writebacks

    def test_breakdown_labels(self, rng):
        ctx = AmbitContext()
        ctx.bulk_op(BulkOp.AND, _vec(rng), _vec(rng), label="stage1")
        ctx.popcount(_vec(rng), label="count")
        assert "stage1" in ctx.breakdown and "count" in ctx.breakdown
        total = sum(ctx.breakdown.values())
        assert total == pytest.approx(ctx.elapsed_ns)

    def test_charge_stream_custom_kernel(self):
        ctx = CpuContext()
        ctx.charge_stream(2048, working_set_bytes=2048, label="fused")
        assert ctx.breakdown["fused"] > 0
