"""LRU cache model: hits, evictions, coherence operations."""

import pytest

from repro.errors import ConfigError
from repro.sim.cache import Cache


@pytest.fixture
def cache():
    # 4 sets x 2 ways x 64 B lines = 512 B.
    return Cache(size_bytes=512, line_bytes=64, associativity=2)


class TestBasics:
    def test_cold_miss_then_hit(self, cache):
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line

    def test_different_lines_miss(self, cache):
        cache.access(0)
        assert cache.access(64) is False

    def test_lru_eviction(self, cache):
        # Three lines mapping to the same set: the oldest is evicted.
        cache.access(0)        # set 0
        cache.access(256)      # set 0 (4 sets * 64 B = 256 stride)
        cache.access(512)      # set 0 -> evicts line 0
        assert cache.access(0) is False

    def test_lru_order_updated_on_hit(self, cache):
        cache.access(0)
        cache.access(256)
        cache.access(0)        # refresh line 0
        cache.access(512)      # should evict 256, not 0
        assert cache.access(0) is True
        assert cache.access(256) is False

    def test_dirty_eviction_counts_writeback(self, cache):
        cache.access(0, write=True)
        cache.access(256)
        cache.access(512)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self, cache):
        cache.access(0)
        cache.access(256)
        cache.access(512)
        assert cache.stats.writebacks == 0

    def test_hit_rate(self, cache):
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_geometry_validated(self):
        with pytest.raises(ConfigError):
            Cache(size_bytes=500, line_bytes=64, associativity=2)
        with pytest.raises(ConfigError):
            Cache(size_bytes=0)


class TestCoherenceOps:
    def test_flush_range_writes_back_dirty(self, cache):
        cache.access(0, write=True)
        cache.access(64, write=False)
        written = cache.flush_range(0, 128)
        assert written == 1
        assert cache.access(0) is False  # evicted

    def test_invalidate_range_drops_without_writeback(self, cache):
        cache.access(0, write=True)
        dropped = cache.invalidate_range(0, 64)
        assert dropped == 1
        assert cache.stats.writebacks == 0
        assert cache.access(0) is False

    def test_dirty_lines_in_range(self, cache):
        cache.access(0, write=True)
        cache.access(64, write=True)
        cache.access(128)
        assert cache.dirty_lines_in_range(0, 192) == 2

    def test_resident_lines(self, cache):
        cache.access(0)
        cache.access(64)
        assert cache.resident_lines == 2

    def test_flush_untouched_range_is_noop(self, cache):
        assert cache.flush_range(4096, 512) == 0
