"""Workload generators: determinism and statistical shape."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads import (
    column_values,
    mutate_dna,
    random_dna,
    random_packed_vector,
    random_sets,
    read_windows,
    synthetic_corpus,
)


@pytest.fixture
def rng():
    return np.random.default_rng(91)


class TestPackedVectors:
    def test_density(self, rng):
        v = random_packed_vector(100_000, rng, density=0.25)
        ones = int(np.unpackbits(v.view(np.uint8)).sum())
        assert 0.2 < ones / 100_000 < 0.3

    def test_padding_zeroed(self, rng):
        v = random_packed_vector(70, rng, density=1.0)
        bits = np.unpackbits(v.view(np.uint8), bitorder="little")
        assert bits[:70].all() and not bits[70:].any()

    def test_invalid_size(self, rng):
        with pytest.raises(SimulationError):
            random_packed_vector(0, rng)


class TestColumns:
    def test_uniform_range(self, rng):
        vals = column_values(10_000, 6, rng)
        assert vals.max() < 64 and vals.min() >= 0

    def test_skewed_supported(self, rng):
        vals = column_values(10_000, 8, rng, distribution="skewed")
        assert vals.max() < 256
        # Zipf skew: the small values dominate.
        assert (vals <= 4).mean() > 0.5

    def test_unknown_distribution(self, rng):
        with pytest.raises(SimulationError):
            column_values(10, 4, rng, distribution="normal")

    def test_bad_shape(self, rng):
        with pytest.raises(SimulationError):
            column_values(0, 4, rng)
        with pytest.raises(SimulationError):
            column_values(10, 65, rng)


class TestSets:
    def test_shape_and_domain(self, rng):
        sets = random_sets(5, 20, 1000, rng)
        assert len(sets) == 5
        for s in sets:
            assert len(s) == 20 and len(set(s)) == 20
            assert all(1 <= e <= 1000 for e in s)

    def test_oversized_rejected(self, rng):
        with pytest.raises(SimulationError):
            random_sets(1, 11, 10, rng)


class TestCorpusAndDna:
    def test_corpus_shape(self, rng):
        docs = synthetic_corpus(20, 7, rng)
        assert len(docs) == 20 and all(len(d) == 7 for d in docs)

    def test_corpus_invalid(self, rng):
        with pytest.raises(SimulationError):
            synthetic_corpus(0, 5, rng)

    def test_dna_alphabet(self, rng):
        seq = random_dna(500, rng)
        assert set(seq) <= set("ACGT") and len(seq) == 500

    def test_mutations_change_exactly_positions(self, rng):
        seq = random_dna(200, rng)
        mutant, positions = mutate_dna(seq, 10, rng)
        diffs = [i for i, (a, b) in enumerate(zip(seq, mutant)) if a != b]
        assert diffs == positions and len(diffs) == 10

    def test_too_many_mutations(self, rng):
        with pytest.raises(SimulationError):
            mutate_dna("ACGT", 5, rng)

    def test_read_windows_valid(self, rng):
        ref = random_dna(1000, rng)
        for offset, window in read_windows(ref, 100, 20, rng):
            assert ref[offset : offset + 100] == window

    def test_read_longer_than_reference(self, rng):
        with pytest.raises(SimulationError):
            read_windows("ACGT", 10, 1, rng)

    def test_determinism(self):
        a = random_dna(100, np.random.default_rng(1))
        b = random_dna(100, np.random.default_rng(1))
        assert a == b
