"""TMR ECC: the homomorphic scheme of Section 5.4.5."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.core.ecc import TmrMemory, TmrRow, tmr_decode, tmr_encode
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import EccError

GEO = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def tmr():
    device = AmbitDevice(geometry=GEO)
    return TmrMemory(device, AmbitDriver(device))


def _row(rng):
    return rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)


class TestCodec:
    def test_encode_three_copies(self, rng):
        data = _row(rng)
        r0, r1, r2 = tmr_encode(data)
        for r in (r0, r1, r2):
            assert np.array_equal(r, data)

    def test_decode_clean(self, rng):
        data = _row(rng)
        result = tmr_decode(*tmr_encode(data))
        assert result.clean and result.corrected_bits == 0
        assert np.array_equal(result.data, data)

    def test_single_replica_corruption_corrected(self, rng):
        data = _row(rng)
        r0, r1, r2 = tmr_encode(data)
        r1[0] ^= np.uint64(0b101)  # flip two bits in one replica
        result = tmr_decode(r0, r1, r2)
        assert not result.clean
        assert result.corrected_bits == 2
        assert np.array_equal(result.data, data)

    def test_strict_mode_raises(self, rng):
        data = _row(rng)
        r0, r1, r2 = tmr_encode(data)
        r2[3] ^= np.uint64(1)
        with pytest.raises(EccError):
            tmr_decode(r0, r1, r2, strict=True)

    def test_homomorphism_over_all_ops(self, rng):
        # TMR(A op B) == TMR(A) op TMR(B): decode of per-replica op
        # results equals the op of decoded values.
        a, b = _row(rng), _row(rng)
        ea, eb = tmr_encode(a), tmr_encode(b)
        ops = {
            "and": lambda x, y: x & y,
            "or": lambda x, y: x | y,
            "xor": lambda x, y: x ^ y,
            "nand": lambda x, y: ~(x & y),
        }
        for name, fn in ops.items():
            per_replica = [fn(ea[i], eb[i]) for i in range(3)]
            decoded = tmr_decode(*per_replica)
            assert np.array_equal(decoded.data, fn(a, b)), name


class TestTmrMemory:
    def test_roundtrip(self, tmr, rng):
        row = tmr.allocate_row()
        data = _row(rng)
        tmr.write(row, data)
        assert np.array_equal(tmr.read(row).data, data)

    def test_replicas_colocated(self, tmr):
        row = tmr.allocate_row()
        assert len({(r.bank, r.subarray) for r in row.replicas}) == 1

    def test_protected_bulk_op(self, tmr, rng):
        a_data, b_data = _row(rng), _row(rng)
        a = tmr.allocate_row()
        b = tmr.allocate_row(like=a)
        dst = tmr.allocate_row(like=a)
        tmr.write(a, a_data)
        tmr.write(b, b_data)
        tmr.bbop(BulkOp.AND, dst, a, b)
        result = tmr.read(dst)
        assert result.clean
        assert np.array_equal(result.data, a_data & b_data)

    def test_corruption_survives_op_then_scrub(self, tmr, rng):
        a_data = _row(rng)
        a = tmr.allocate_row()
        tmr.write(a, a_data)
        # Corrupt one replica behind ECC's back (a bit flip in DRAM).
        victim = a.replicas[1]
        image = tmr.device.read_row(victim)
        image[0] ^= np.uint64(1)
        tmr.device.write_row(victim, image)
        result = tmr.read(a)
        assert result.corrected_bits == 1
        assert np.array_equal(result.data, a_data)
        assert tmr.scrub(a) == 1
        assert tmr.read(a).clean

    def test_replica_count_enforced(self):
        with pytest.raises(EccError):
            TmrRow([RowLocation(0, 0, 0), RowLocation(0, 0, 1)])

    def test_scattered_replicas_rejected(self):
        with pytest.raises(EccError):
            TmrRow(
                [RowLocation(0, 0, 0), RowLocation(0, 1, 1), RowLocation(0, 0, 2)]
            )
