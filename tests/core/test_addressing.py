"""Row address grouping and the Table 1 wordline mapping."""

import pytest

from repro.core.addressing import AmbitAddressMap
from repro.dram.cell import Wordline
from repro.dram.geometry import SubarrayGeometry
from repro.errors import AddressError

GEO = SubarrayGeometry(rows=1024, row_bytes=8192)


@pytest.fixture
def amap():
    return AmbitAddressMap(GEO)


class TestGroups:
    def test_paper_group_sizes(self, amap):
        # Figure 7: 1006 D + 2 C + 16 B addresses = 1024.
        assert amap.data_rows == 1006
        assert amap.address_space == 1024

    def test_group_classification(self, amap):
        assert amap.group_of(0) == "D"
        assert amap.group_of(1005) == "D"
        assert amap.group_of(amap.c(0)) == "C"
        assert amap.group_of(amap.c(1)) == "C"
        assert amap.group_of(amap.b(0)) == "B"
        assert amap.group_of(amap.b(15)) == "B"

    def test_groups_are_disjoint_and_cover(self, amap):
        for addr in range(amap.address_space):
            flags = [
                amap.is_d_group(addr),
                amap.is_c_group(addr),
                amap.is_b_group(addr),
            ]
            assert sum(flags) == 1

    def test_out_of_space(self, amap):
        with pytest.raises(AddressError):
            amap.group_of(1024)

    def test_d_range_checked(self, amap):
        with pytest.raises(AddressError):
            amap.d(1006)

    def test_c_range_checked(self, amap):
        with pytest.raises(AddressError):
            amap.c(2)

    def test_b_range_checked(self, amap):
        with pytest.raises(AddressError):
            amap.b(16)

    def test_t_row_range_checked(self, amap):
        with pytest.raises(AddressError):
            amap.row_t(4)

    def test_dcc_row_range_checked(self, amap):
        with pytest.raises(AddressError):
            amap.row_dcc(2)


class TestTable1:
    """The exact Table 1 mapping, entry by entry."""

    def test_single_wordline_addresses(self, amap):
        table = amap.b_group_wordlines()
        assert table[amap.b(0)] == (Wordline(amap.row_t(0)),)
        assert table[amap.b(1)] == (Wordline(amap.row_t(1)),)
        assert table[amap.b(2)] == (Wordline(amap.row_t(2)),)
        assert table[amap.b(3)] == (Wordline(amap.row_t(3)),)

    def test_dcc_wordlines(self, amap):
        table = amap.b_group_wordlines()
        assert table[amap.b(4)] == (Wordline(amap.row_dcc(0)),)
        assert table[amap.b(5)] == (Wordline(amap.row_dcc(0), negated=True),)
        assert table[amap.b(6)] == (Wordline(amap.row_dcc(1)),)
        assert table[amap.b(7)] == (Wordline(amap.row_dcc(1), negated=True),)

    def test_double_wordline_addresses(self, amap):
        # B8-B11 activate two wordlines (used to fork results).
        table = amap.b_group_wordlines()
        assert table[amap.b(8)] == (
            Wordline(amap.row_dcc(0), negated=True),
            Wordline(amap.row_t(0)),
        )
        assert table[amap.b(9)] == (
            Wordline(amap.row_dcc(1), negated=True),
            Wordline(amap.row_t(1)),
        )
        assert table[amap.b(10)] == (
            Wordline(amap.row_t(2)),
            Wordline(amap.row_t(3)),
        )
        assert table[amap.b(11)] == (
            Wordline(amap.row_t(0)),
            Wordline(amap.row_t(3)),
        )

    def test_triple_wordline_addresses(self, amap):
        # B12-B15 trigger triple-row activations.
        table = amap.b_group_wordlines()
        assert table[amap.b(12)] == tuple(
            Wordline(amap.row_t(i)) for i in (0, 1, 2)
        )
        assert table[amap.b(13)] == tuple(
            Wordline(amap.row_t(i)) for i in (1, 2, 3)
        )
        assert table[amap.b(14)] == (
            Wordline(amap.row_dcc(0)),
            Wordline(amap.row_t(1)),
            Wordline(amap.row_t(2)),
        )
        assert table[amap.b(15)] == (
            Wordline(amap.row_dcc(1)),
            Wordline(amap.row_t(0)),
            Wordline(amap.row_t(3)),
        )

    def test_first_eight_addresses_raise_single_wordlines(self, amap):
        table = amap.b_group_wordlines()
        for i in range(8):
            assert len(table[amap.b(i)]) == 1

    def test_wordline_counts(self, amap):
        table = amap.b_group_wordlines()
        counts = [len(table[amap.b(i)]) for i in range(16)]
        assert counts == [1] * 8 + [2] * 4 + [3] * 4


class TestDecoder:
    def test_full_decoder_covers_address_space(self, amap):
        dec = amap.build_decoder()
        assert dec.address_space() == amap.address_space
        for addr in range(amap.address_space):
            assert len(dec.decode(addr)) >= 1

    def test_data_addresses_are_identity(self, amap):
        dec = amap.build_decoder()
        assert dec.decode(17) == (Wordline(17),)

    def test_control_addresses(self, amap):
        dec = amap.build_decoder()
        assert dec.decode(amap.c(0)) == (Wordline(amap.row_c0),)
        assert dec.decode(amap.c(1)) == (Wordline(amap.row_c1),)

    def test_b12_raises_t0_t1_t2(self, amap):
        # Figure 7's example: ACTIVATE B12 raises T0, T1, T2.
        dec = amap.build_decoder()
        rows = {wl.row for wl in dec.decode(amap.b(12))}
        assert rows == {amap.row_t(0), amap.row_t(1), amap.row_t(2)}

    def test_works_for_small_geometry(self):
        small = AmbitAddressMap(SubarrayGeometry(rows=24, row_bytes=64))
        dec = small.build_decoder()
        assert dec.address_space() == 24
        assert small.data_rows == 6
