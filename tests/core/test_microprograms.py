"""Figure 8: the command microprograms of every bulk operation."""

import pytest

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import (
    BulkOp,
    compile_and,
    compile_copy,
    compile_nand,
    compile_nor,
    compile_not,
    compile_op,
    compile_or,
    compile_xnor,
    compile_xor,
)
from repro.core.primitives import AAP, AP
from repro.dram.geometry import SubarrayGeometry
from repro.errors import AddressError

GEO = SubarrayGeometry(rows=1024, row_bytes=8192)


@pytest.fixture
def amap():
    return AmbitAddressMap(GEO)


class TestFigure8Sequences:
    def test_and_matches_figure_8a(self, amap):
        di, dj, dk = 3, 7, 11
        prog = compile_and(amap, di, dj, dk)
        assert prog.primitives == (
            AAP(di, amap.b(0)),
            AAP(dj, amap.b(1)),
            AAP(amap.c(0), amap.b(2)),
            AAP(amap.b(12), dk),
        )

    def test_nand_matches_figure_8b(self, amap):
        di, dj, dk = 3, 7, 11
        prog = compile_nand(amap, di, dj, dk)
        assert prog.primitives == (
            AAP(di, amap.b(0)),
            AAP(dj, amap.b(1)),
            AAP(amap.c(0), amap.b(2)),
            AAP(amap.b(12), amap.b(5)),
            AAP(amap.b(4), dk),
        )

    def test_xor_matches_figure_8c(self, amap):
        di, dj, dk = 3, 7, 11
        prog = compile_xor(amap, di, dj, dk)
        assert prog.primitives == (
            AAP(di, amap.b(8)),
            AAP(dj, amap.b(9)),
            AAP(amap.c(0), amap.b(10)),
            AP(amap.b(14)),
            AP(amap.b(15)),
            AAP(amap.c(1), amap.b(2)),
            AAP(amap.b(12), dk),
        )

    def test_not_matches_section_5_2(self, amap):
        # ACT Di; ACT B5; PRE; ACT B4; ACT Dk; PRE.
        prog = compile_not(amap, 3, 11)
        assert prog.primitives == (AAP(3, amap.b(5)), AAP(amap.b(4), 11))

    def test_or_differs_from_and_only_in_control_row(self, amap):
        and_prog = compile_and(amap, 3, 7, 11)
        or_prog = compile_or(amap, 3, 7, 11)
        assert and_prog.primitives[2] == AAP(amap.c(0), amap.b(2))
        assert or_prog.primitives[2] == AAP(amap.c(1), amap.b(2))
        assert and_prog.primitives[:2] == or_prog.primitives[:2]
        assert and_prog.primitives[3] == or_prog.primitives[3]

    def test_nor_differs_from_nand_only_in_control_row(self, amap):
        nand = compile_nand(amap, 3, 7, 11)
        nor = compile_nor(amap, 3, 7, 11)
        assert nand.primitives[2].addr1 == amap.c(0)
        assert nor.primitives[2].addr1 == amap.c(1)

    def test_xnor_swaps_control_rows(self, amap):
        xor = compile_xor(amap, 3, 7, 11)
        xnor = compile_xnor(amap, 3, 7, 11)
        assert xor.primitives[2].addr1 == amap.c(0)
        assert xnor.primitives[2].addr1 == amap.c(1)
        assert xor.primitives[5].addr1 == amap.c(1)
        assert xnor.primitives[5].addr1 == amap.c(0)

    def test_copy_is_single_aap(self, amap):
        prog = compile_copy(amap, 3, 11)
        assert prog.primitives == (AAP(3, 11),)


class TestPrimitiveCounts:
    """Primitive counts drive both the latency and energy analyses."""

    @pytest.mark.parametrize(
        "op,aap,ap",
        [
            (BulkOp.NOT, 2, 0),
            (BulkOp.COPY, 1, 0),
            (BulkOp.AND, 4, 0),
            (BulkOp.OR, 4, 0),
            (BulkOp.NAND, 5, 0),
            (BulkOp.NOR, 5, 0),
            (BulkOp.XOR, 5, 2),
            (BulkOp.XNOR, 5, 2),
        ],
    )
    def test_counts(self, amap, op, aap, ap):
        prog = compile_op(amap, op, 11, 3, None if op.arity == 1 else 7)
        assert (prog.num_aap, prog.num_ap) == (aap, ap)


class TestValidation:
    def test_destination_must_be_data_row(self, amap):
        with pytest.raises(AddressError):
            compile_and(amap, 3, 7, amap.b(0))

    def test_source_must_be_data_or_control(self, amap):
        with pytest.raises(AddressError):
            compile_and(amap, amap.b(3), 7, 11)

    def test_control_rows_allowed_as_sources(self, amap):
        compile_and(amap, amap.c(1), 7, 11)  # no raise

    def test_copy_to_self_rejected(self, amap):
        with pytest.raises(AddressError):
            compile_copy(amap, 3, 3)

    def test_arity_enforced(self, amap):
        with pytest.raises(AddressError):
            compile_op(amap, BulkOp.NOT, 11, 3, 7)
        with pytest.raises(AddressError):
            compile_op(amap, BulkOp.AND, 11, 3)

    def test_not_destination_checked(self, amap):
        with pytest.raises(AddressError):
            compile_not(amap, 3, amap.c(0))


class TestMajMicroprogram:
    def test_maj_structure(self, amap):
        from repro.core.microprograms import compile_maj
        from repro.core.primitives import AAP

        prog = compile_maj(amap, 3, 7, 9, 11)
        assert prog.primitives == (
            AAP(3, amap.b(0)),
            AAP(7, amap.b(1)),
            AAP(9, amap.b(2)),
            AAP(amap.b(12), 11),
        )
        assert prog.num_aap == 4 and prog.num_ap == 0

    def test_maj_same_cost_as_and(self, amap):
        from repro.core.microprograms import compile_and, compile_maj

        assert compile_maj(amap, 0, 1, 2, 3).num_aap == compile_and(
            amap, 0, 1, 3
        ).num_aap

    def test_maj_via_compile_op(self, amap):
        prog = compile_op(amap, BulkOp.MAJ, 11, 3, 7, 9)
        assert prog.op is BulkOp.MAJ

    def test_maj_arity_enforced(self, amap):
        with pytest.raises(AddressError):
            compile_op(amap, BulkOp.MAJ, 11, 3, 7)
        with pytest.raises(AddressError):
            compile_op(amap, BulkOp.AND, 11, 3, 7, 9)

    def test_maj_destination_checked(self, amap):
        from repro.core.microprograms import compile_maj

        with pytest.raises(AddressError):
            compile_maj(amap, 0, 1, 2, amap.b(0))
