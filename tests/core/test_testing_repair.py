"""Manufacturing test, binning, and spare-row repair (Section 5.5.3)."""

import numpy as np
import pytest

from repro.circuit import AnalogSenseModel, VariationSpec
from repro.core.addressing import AmbitAddressMap
from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.core.repair import RepairMap, RepairedRowDecoder
from repro.core.testing import (
    ChipBin,
    bin_chip,
    run_chip_test,
)
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.dram.subarray import Subarray
from repro.errors import AddressError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)


class TestChipTest:
    def test_healthy_chip_bins_ambit(self):
        device = AmbitDevice(geometry=GEO)
        report = run_chip_test(device)
        assert report.data_rows_ok and report.ambit_ok
        assert bin_chip(report) == ChipBin.AMBIT

    def test_tra_failures_bin_regular_dram(self):
        # Severe variation: TRAs misbehave, but plain row access and the
        # DCC path still work -> sellable as regular DRAM.
        device = AmbitDevice(
            geometry=GEO,
            charge_model_factory=lambda: AnalogSenseModel(
                VariationSpec(level=0.25), np.random.default_rng(3)
            ),
        )
        report = run_chip_test(device)
        assert report.data_rows_ok
        assert not report.ambit_ok
        assert bin_chip(report) == ChipBin.REGULAR_DRAM
        failing = [s for s in report.subarrays if not s.tra_ok]
        assert failing and all("TRA" in s.failures[0] for s in failing)

    def test_reports_cover_every_subarray(self):
        device = AmbitDevice(geometry=GEO)
        report = run_chip_test(device)
        assert len(report.subarrays) == GEO.banks * GEO.subarrays_per_bank

    def test_low_variation_chip_still_bins_ambit(self):
        device = AmbitDevice(
            geometry=GEO,
            charge_model_factory=lambda: AnalogSenseModel(
                VariationSpec(level=0.05), np.random.default_rng(4)
            ),
        )
        assert bin_chip(run_chip_test(device)) == ChipBin.AMBIT


class TestRepairMap:
    def test_assign_and_translate(self):
        rm = RepairMap(spares=(20, 21))
        spare = rm.assign(3)
        assert spare == 20
        assert rm.translate(3) == 20
        assert rm.translate(4) == 4

    def test_assign_idempotent(self):
        rm = RepairMap(spares=(20, 21))
        assert rm.assign(3) == rm.assign(3)

    def test_spares_exhausted(self):
        rm = RepairMap(spares=(20,))
        rm.assign(1)
        with pytest.raises(AddressError):
            rm.assign(2)

    def test_cannot_repair_spare_with_itself(self):
        rm = RepairMap(spares=(20,))
        with pytest.raises(AddressError):
            rm.assign(20)


class TestRepairedDecoder:
    def test_single_row_repair(self):
        amap = AmbitAddressMap(GEO.subarray)
        rm = RepairMap(spares=(GEO.subarray.data_rows - 1,))
        spare = rm.assign(2)
        decoder = RepairedRowDecoder(amap.build_decoder(), rm)
        assert decoder.decode(2)[0].row == spare
        assert decoder.decode(3)[0].row == 3

    def test_bgroup_fanout_repaired_consistently(self):
        # Repairing T0's storage row must redirect B0, B8, B11, B12,
        # B15 -- every address whose fan-out includes T0.
        amap = AmbitAddressMap(GEO.subarray)
        rm = RepairMap(spares=(GEO.subarray.data_rows - 1,))
        spare = rm.assign(amap.row_t(0))
        decoder = RepairedRowDecoder(amap.build_decoder(), rm)
        for b_index in (0, 8, 11, 12, 15):
            rows = [wl.row for wl in decoder.decode(amap.b(b_index))]
            assert spare in rows
            assert amap.row_t(0) not in rows

    def test_negation_preserved(self):
        amap = AmbitAddressMap(GEO.subarray)
        rm = RepairMap(spares=(GEO.subarray.data_rows - 1,))
        rm.assign(amap.row_dcc(0))
        decoder = RepairedRowDecoder(amap.build_decoder(), rm)
        wl = decoder.decode(amap.b(5))[0]  # DCC0 n-wordline
        assert wl.negated is True

    def test_repaired_subarray_computes_correctly(self):
        # End to end: build a subarray whose T1 is remapped to a spare;
        # an AND still produces the right result (the faulty row is
        # never touched).
        amap = AmbitAddressMap(GEO.subarray)
        faulty = amap.row_t(1)
        rm = RepairMap(spares=(GEO.subarray.data_rows - 1,))
        spare = rm.assign(faulty)
        sub = Subarray(
            GEO.subarray, decoder=RepairedRowDecoder(amap.build_decoder(), rm)
        )
        rng = np.random.default_rng(5)
        words = GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        sub.poke(0, a)
        sub.poke(1, b)
        sub.poke(amap.row_c0, np.zeros(words, dtype=np.uint64))
        # Simulate a stuck-at fault in the faulty physical row: poison
        # it; the decoder must never read it back.
        sub.poke(faulty, np.full(words, np.uint64(0xDEADDEADDEADDEAD)))

        def aap(a1, a2):
            sub.activate(a1)
            sub.activate(a2)
            sub.precharge()

        aap(0, amap.b(0))             # T0 = a
        aap(1, amap.b(1))             # T1 (-> spare) = b
        aap(amap.c(0), amap.b(2))     # T2 = 0
        aap(amap.b(12), 2)            # D2 = a & b
        assert np.array_equal(sub.peek(2), a & b)
        assert np.array_equal(sub.peek(spare), a & b)  # TRA restored it


class TestFaultRepairLoop:
    """The full Section 5.5.3 yield flow: fault -> detect -> repair -> retest."""

    def test_stuck_row_detected(self):
        from repro.core.testing import inject_stuck_row

        device = AmbitDevice(geometry=GEO)
        inject_stuck_row(device, bank=0, subarray=1, storage_row=0)
        report = run_chip_test(device)
        bad = [s for s in report.subarrays
               if (s.bank, s.subarray) == (0, 1)][0]
        assert not bad.data_rows_ok
        assert 0 in bad.failed_data_rows
        assert bin_chip(report) == ChipBin.REJECT

    def test_repair_restores_ambit_binning(self):
        from repro.core.testing import inject_stuck_row, repair_chip

        device = AmbitDevice(geometry=GEO)
        inject_stuck_row(device, bank=1, subarray=0, storage_row=0)
        first = run_chip_test(device)
        assert bin_chip(first) == ChipBin.REJECT

        repaired = repair_chip(device, first)
        assert repaired == 1
        second = run_chip_test(device)
        assert bin_chip(second) == ChipBin.AMBIT

    def test_repaired_row_computes_correctly(self):
        from repro.core.testing import inject_stuck_row, repair_chip
        from repro.core.microprograms import BulkOp

        device = AmbitDevice(geometry=GEO)
        inject_stuck_row(device, bank=0, subarray=0, storage_row=0)
        report = run_chip_test(device)
        repair_chip(device, report)

        # Write operands through the command path (repair lives in the
        # decoder, which the command path honours).
        rng = np.random.default_rng(9)
        words = GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        bank = device.chip.bank(0)
        for row, value in ((0, a), (1, b)):
            device.chip.activate(0, 0, row)
            bank.write_open_row(value)
            device.chip.precharge(0)
        device.controller.bbop(BulkOp.AND, 0, 0, dk=2, di=0, dj=1)
        device.chip.activate(0, 0, 2)
        result = bank.read_open_row()
        device.chip.precharge(0)
        assert np.array_equal(result, a & b)

    def test_many_faults_exhaust_spares(self):
        from repro.core.repair import RepairMap
        from repro.errors import AddressError

        spares = tuple(
            range(GEO.subarray.data_rows + 8, GEO.subarray.storage_rows)
        )
        rm = RepairMap(spares=spares)
        for i in range(len(spares)):
            rm.assign(i)
        with pytest.raises(AddressError):
            rm.assign(len(spares))
