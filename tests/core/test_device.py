"""The assembled Ambit device: functional correctness of every bulk op."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import AddressError, DramProtocolError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row

REFERENCE = {
    BulkOp.NOT: lambda a, b: ~a,
    BulkOp.COPY: lambda a, b: a,
    BulkOp.AND: lambda a, b: a & b,
    BulkOp.OR: lambda a, b: a | b,
    BulkOp.NAND: lambda a, b: ~(a & b),
    BulkOp.NOR: lambda a, b: ~(a | b),
    BulkOp.XOR: lambda a, b: a ^ b,
    BulkOp.XNOR: lambda a, b: ~(a ^ b),
}


@pytest.fixture
def device():
    return AmbitDevice(geometry=GEO)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def _row(rng):
    return rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)


def loc(address, bank=0, subarray=0):
    return RowLocation(bank=bank, subarray=subarray, address=address)


class TestBulkOpsBitExact:
    @pytest.mark.parametrize("op", list(REFERENCE))
    def test_matches_reference(self, device, rng, op):
        a, b = _row(rng), _row(rng)
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(op, loc(2), loc(0), None if op.arity == 1 else loc(1))
        expected = REFERENCE[op](a, b)
        assert np.array_equal(device.read_row(loc(2)), expected), op

    @pytest.mark.parametrize("op", [BulkOp.AND, BulkOp.XOR, BulkOp.NAND])
    def test_sources_preserved(self, device, rng, op):
        # Ambit's whole point of using designated rows (issue 3).
        a, b = _row(rng), _row(rng)
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(op, loc(2), loc(0), loc(1))
        assert np.array_equal(device.read_row(loc(0)), a)
        assert np.array_equal(device.read_row(loc(1)), b)

    @pytest.mark.parametrize("op", [BulkOp.AND, BulkOp.OR, BulkOp.XOR])
    def test_works_in_every_subarray(self, device, rng, op):
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                a, b = _row(rng), _row(rng)
                device.write_row(loc(0, bank, sub), a)
                device.write_row(loc(1, bank, sub), b)
                device.bbop_row(
                    op, loc(2, bank, sub), loc(0, bank, sub), loc(1, bank, sub)
                )
                assert np.array_equal(
                    device.read_row(loc(2, bank, sub)), REFERENCE[op](a, b)
                )

    def test_in_place_destination(self, device, rng):
        # dst may alias a source: Dk = Dk and Dj.
        a, b = _row(rng), _row(rng)
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(BulkOp.AND, loc(0), loc(0), loc(1))
        assert np.array_equal(device.read_row(loc(0)), a & b)

    def test_same_row_both_sources(self, device, rng):
        a = _row(rng)
        device.write_row(loc(0), a)
        device.bbop_row(BulkOp.XOR, loc(2), loc(0), loc(0))
        assert np.array_equal(device.read_row(loc(2)), np.zeros_like(a))

    def test_chained_ops(self, device, rng):
        # (a & b) | ~c, composed from three bulk ops.
        a, b, c = _row(rng), _row(rng), _row(rng)
        for i, v in enumerate((a, b, c)):
            device.write_row(loc(i), v)
        device.bbop_row(BulkOp.AND, loc(3), loc(0), loc(1))
        device.bbop_row(BulkOp.NOT, loc(4), loc(2))
        device.bbop_row(BulkOp.OR, loc(5), loc(3), loc(4))
        assert np.array_equal(device.read_row(loc(5)), (a & b) | ~c)


class TestControlRows:
    def test_c0_initialised_to_zeros(self, device):
        amap = device.amap
        for bank in device.chip.banks:
            for sub in bank.subarrays:
                assert (sub.peek(amap.row_c0) == 0).all()

    def test_c1_initialised_to_ones(self, device):
        amap = device.amap
        for bank in device.chip.banks:
            for sub in bank.subarrays:
                assert (sub.peek(amap.row_c1) == np.uint64(2**64 - 1)).all()

    def test_control_rows_usable_as_operands(self, device, rng):
        # a AND C1 == a; a OR C1 == ones.
        a = _row(rng)
        device.write_row(loc(0), a)
        device.controller.bbop(
            BulkOp.AND, 0, 0, dk=2, di=0, dj=device.amap.c(1)
        )
        assert np.array_equal(device.read_row(loc(2)), a)


class TestValidationAndAccounting:
    def test_cross_subarray_rejected(self, device, rng):
        device.write_row(loc(0), _row(rng))
        with pytest.raises(AddressError):
            device.bbop_row(BulkOp.AND, loc(2), loc(0), loc(1, subarray=1))

    def test_open_bank_rejected(self, device):
        device.chip.activate(0, 0, 0)
        with pytest.raises(DramProtocolError):
            device.controller.bbop(BulkOp.AND, 0, 0, dk=2, di=0, dj=1)

    def test_stats_accumulate(self, device, rng):
        device.write_row(loc(0), _row(rng))
        device.write_row(loc(1), _row(rng))
        device.bbop_row(BulkOp.AND, loc(2), loc(0), loc(1))
        stats = device.controller.stats
        assert stats.aap_count == 4
        assert stats.ops[BulkOp.AND] == 1
        assert stats.busy_ns == pytest.approx(4 * 49.0)

    def test_bank_parallel_makespan(self, device, rng):
        # The same work on two banks completes in the single-bank time.
        for bank in (0, 1):
            device.write_row(loc(0, bank), _row(rng))
            device.write_row(loc(1, bank), _row(rng))
            device.bbop_row(BulkOp.AND, loc(2, bank), loc(0, bank), loc(1, bank))
        assert device.elapsed_ns == pytest.approx(4 * 49.0)
        assert device.busy_ns == pytest.approx(2 * 4 * 49.0)

    def test_reset_stats(self, device, rng):
        device.write_row(loc(0), _row(rng))
        device.bbop_row(BulkOp.NOT, loc(2), loc(0))
        device.reset_stats()
        assert device.elapsed_ns == 0.0
        assert len(device.chip.trace) == 0

    def test_psm_copy_between_banks(self, device, rng):
        data = _row(rng)
        device.write_row(loc(0, bank=0), data)
        device.psm_copy(loc(0, bank=0), loc(5, bank=1))
        assert np.array_equal(device.read_row(loc(5, bank=1)), data)
        assert device.controller.stats.busy_ns > 0

    def test_split_decoder_ablation(self, rng):
        fast = AmbitDevice(geometry=GEO, split_decoder=True)
        slow = AmbitDevice(geometry=GEO, split_decoder=False)
        for device in (fast, slow):
            device.write_row(loc(0), _row(rng))
            device.write_row(loc(1), _row(rng))
            device.bbop_row(BulkOp.AND, loc(2), loc(0), loc(1))
        assert slow.elapsed_ns == pytest.approx(4 * 80.0)
        assert fast.elapsed_ns == pytest.approx(4 * 49.0)
