"""Coherence: the Dirty-Block Index and the flush cost model (5.4.4)."""

import pytest

from repro.core.coherence import (
    CoherenceCost,
    CoherenceLog,
    DirtyBlockIndex,
    coherence_for_bbop,
)
from repro.errors import SimulationError

ROW = 1024
LINE = 64


@pytest.fixture
def dbi():
    return DirtyBlockIndex(row_bytes=ROW, line_bytes=LINE)


class TestDirtyBlockIndex:
    def test_mark_and_count(self, dbi):
        dbi.mark_dirty(0)
        dbi.mark_dirty(LINE)
        dbi.mark_dirty(LINE + 1)  # same line
        assert dbi.dirty_lines_in_row(0) == 2

    def test_rows_separated(self, dbi):
        dbi.mark_dirty(0)
        dbi.mark_dirty(ROW)
        assert dbi.dirty_lines_in_row(0) == 1
        assert dbi.dirty_lines_in_row(1) == 1

    def test_any_dirty(self, dbi):
        dbi.mark_dirty(2 * ROW)
        assert dbi.any_dirty([0, 1, 2])
        assert not dbi.any_dirty([0, 1])

    def test_flush_clears_and_counts(self, dbi):
        dbi.mark_dirty(0)
        dbi.mark_dirty(LINE)
        assert dbi.flush_rows([0]) == 2
        assert dbi.dirty_lines_in_row(0) == 0

    def test_flush_idempotent(self, dbi):
        dbi.mark_dirty(0)
        dbi.flush_rows([0])
        assert dbi.flush_rows([0]) == 0

    def test_mark_clean(self, dbi):
        dbi.mark_dirty(0)
        dbi.mark_clean(0)
        assert dbi.dirty_lines_in_row(0) == 0

    def test_lines_per_row(self, dbi):
        assert dbi.lines_per_row == ROW // LINE

    def test_bad_geometry(self):
        with pytest.raises(SimulationError):
            DirtyBlockIndex(row_bytes=100, line_bytes=64)


class TestCostModel:
    def test_flush_cost_scales_with_dirty_lines(self):
        cost = CoherenceCost()
        few = cost.flush_ns(dirty_lines=1, rows_looked_up=1)
        many = cost.flush_ns(dirty_lines=100, rows_looked_up=1)
        assert many > few

    def test_lookup_only_when_clean(self):
        cost = CoherenceCost(lookup_ns=2.0)
        assert cost.flush_ns(0, rows_looked_up=3) == pytest.approx(6.0)

    def test_invalidate_per_row(self):
        cost = CoherenceCost(invalidate_ns_per_row=10.0)
        assert cost.invalidate_ns(4) == pytest.approx(40.0)


class TestBbopCoherence:
    def test_clean_sources_cost_lookups_only(self, dbi):
        cost = CoherenceCost(lookup_ns=2.0, invalidate_ns_per_row=10.0)
        log = CoherenceLog()
        wait = coherence_for_bbop(
            dbi, cost, source_rows=[0, 1], dest_rows=[2], log=log,
            op_latency_ns=196.0,
        )
        # Invalidation (10 ns) fully overlaps the 196 ns operation.
        assert wait == pytest.approx(4.0)
        assert log.lines_written_back == 0

    def test_dirty_sources_pay_writeback(self, dbi):
        cost = CoherenceCost(lookup_ns=0.0, writeback_bw_gbps=64.0 / 1.0)
        log = CoherenceLog()
        for i in range(4):
            dbi.mark_dirty(i * 64)
        wait = coherence_for_bbop(
            dbi, cost, source_rows=[0], dest_rows=[1], log=log,
            op_latency_ns=1e9,
        )
        assert wait == pytest.approx(4.0)  # 4 lines * 64 B / 64 B/ns
        assert log.lines_written_back == 4

    def test_dirty_destination_dropped_without_writeback(self, dbi):
        dbi.mark_dirty(ROW)  # row 1 is the destination
        cost = CoherenceCost(lookup_ns=0.0)
        log = CoherenceLog()
        coherence_for_bbop(
            dbi, cost, source_rows=[0], dest_rows=[1], log=log,
            op_latency_ns=100.0,
        )
        assert log.lines_written_back == 0
        assert dbi.dirty_lines_in_row(1) == 0

    def test_slow_invalidation_charges_overflow(self, dbi):
        cost = CoherenceCost(lookup_ns=0.0, invalidate_ns_per_row=50.0)
        log = CoherenceLog()
        wait = coherence_for_bbop(
            dbi, cost, source_rows=[0], dest_rows=[1, 2], log=log,
            op_latency_ns=60.0,
        )
        # 100 ns invalidation vs 60 ns op: 40 ns exposed.
        assert wait == pytest.approx(40.0)
