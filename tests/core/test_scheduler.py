"""Interleaving Ambit jobs with regular memory traffic (Section 5.5.2)."""

import pytest

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import BulkOp, compile_op
from repro.core.scheduler import AmbitJob, InterleavingController
from repro.dram.controller import MemRequest, RequestType
from repro.dram.geometry import SubarrayGeometry
from repro.dram.timing import ddr3_1600
from repro.errors import SimulationError

AMAP = AmbitAddressMap(SubarrayGeometry(rows=1024, row_bytes=8192))


def _controller(banks=2):
    return InterleavingController(ddr3_1600(), AMAP, banks=banks)


def _job(bank=0, arrival=0.0, op=BulkOp.AND):
    prog = compile_op(AMAP, op, 2, 0, None if op.arity == 1 else 1)
    return AmbitJob(program=prog, bank=bank, arrival_ns=arrival)


def _req(bank=0, arrival=0.0, row=5):
    return MemRequest(RequestType.READ, bank=bank, row=row, arrival_ns=arrival)


class TestPureStreams:
    def test_jobs_only(self):
        ctrl = _controller()
        ctrl.enqueue_job(_job())
        stats = ctrl.run()
        # One AND = 4 overlapped AAPs = 196 ns.
        assert stats.makespan_ns == pytest.approx(196.0)
        assert stats.job_latencies == [pytest.approx(196.0)]

    def test_requests_only(self):
        ctrl = _controller()
        ctrl.enqueue_request(_req())
        stats = ctrl.run()
        t = ddr3_1600()
        assert stats.mean_request_latency == pytest.approx(
            t.tRCD + t.tCL + t.tBL
        )

    def test_empty(self):
        stats = _controller().run()
        assert stats.makespan_ns == 0.0


class TestInterleaving:
    def test_request_slips_between_primitives(self):
        # A request arriving mid-job is served at a primitive boundary,
        # not after the whole job.
        ctrl = _controller()
        ctrl.enqueue_job(_job(arrival=0.0))
        ctrl.enqueue_request(_req(arrival=10.0))
        stats = ctrl.run()
        req_finish = stats.request_latencies[0] + 10.0
        assert req_finish < 196.0 + 25.0  # served before the job's end

    def test_job_delayed_by_interleaved_request(self):
        alone = _controller()
        alone.enqueue_job(_job())
        base = alone.run().job_latencies[0]

        shared = _controller()
        shared.enqueue_job(_job(arrival=0.0))
        shared.enqueue_request(_req(arrival=1.0))
        delayed = shared.run().job_latencies[0]
        assert delayed > base

    def test_banks_independent(self):
        ctrl = _controller(banks=2)
        ctrl.enqueue_job(_job(bank=0))
        ctrl.enqueue_job(_job(bank=1))
        stats = ctrl.run()
        # Parallel banks: makespan equals one job, not two.
        assert stats.makespan_ns == pytest.approx(196.0)

    def test_same_bank_serialises(self):
        ctrl = _controller(banks=2)
        ctrl.enqueue_job(_job(bank=0))
        ctrl.enqueue_job(_job(bank=0))
        stats = ctrl.run()
        assert stats.makespan_ns == pytest.approx(392.0)

    def test_request_latency_under_load_grows(self):
        # Foreground latency degrades gracefully under Ambit load: each
        # request waits at most one primitive.
        light = _controller()
        light.enqueue_request(_req(arrival=5.0))
        light_latency = light.run().mean_request_latency

        heavy = _controller()
        for i in range(4):
            heavy.enqueue_job(_job(arrival=0.0))
        heavy.enqueue_request(_req(arrival=5.0))
        heavy_latency = heavy.run().mean_request_latency
        assert heavy_latency > light_latency
        # Bounded interference: waits for the in-flight primitive (49ns
        # AAP), not for all four queued jobs (~784 ns).
        assert heavy_latency < light_latency + 100.0

    def test_arrival_order_respected_for_idle_bank(self):
        ctrl = _controller()
        ctrl.enqueue_request(_req(arrival=500.0))
        stats = ctrl.run()
        assert stats.request_latencies[0] == pytest.approx(
            ddr3_1600().tRCD + ddr3_1600().tCL + ddr3_1600().tBL
        )

    def test_bank_bounds_checked(self):
        ctrl = _controller(banks=2)
        with pytest.raises(SimulationError):
            ctrl.enqueue_job(_job(bank=2))
        with pytest.raises(SimulationError):
            ctrl.enqueue_request(_req(bank=5))

    def test_zero_banks_rejected(self):
        with pytest.raises(SimulationError):
            InterleavingController(ddr3_1600(), AMAP, banks=0)

    def test_naive_decoder_jobs_slower(self):
        fast = _controller()
        fast.enqueue_job(_job())
        slow = InterleavingController(
            ddr3_1600(), AMAP, banks=2, split_decoder=False
        )
        slow.enqueue_job(_job())
        assert slow.run().mean_job_latency > fast.run().mean_job_latency
