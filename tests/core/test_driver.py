"""The subarray-aware driver (Section 5.4.2)."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.driver import (
    SCRATCH_ROWS_PER_SUBARRAY,
    AmbitDriver,
    BitVectorHandle,
    stage_row,
)
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import AllocationError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)
DATA_ROWS = GEO.subarray.data_rows  # 6
USABLE = DATA_ROWS - SCRATCH_ROWS_PER_SUBARRAY  # 4 per subarray


@pytest.fixture
def device():
    return AmbitDevice(geometry=GEO)


@pytest.fixture
def driver(device):
    return AmbitDriver(device)


class TestAllocation:
    def test_rows_needed(self, driver):
        row_bits = GEO.subarray.row_bits
        assert driver.rows_needed(1) == 1
        assert driver.rows_needed(row_bits) == 1
        assert driver.rows_needed(row_bits + 1) == 2

    def test_zero_bits_rejected(self, driver):
        with pytest.raises(AllocationError):
            driver.allocate(0)

    def test_multi_row_vector_spreads_across_banks(self, driver):
        handle = driver.allocate(GEO.subarray.row_bits * 4)
        banks = {r.bank for r in handle.rows}
        assert len(banks) > 1  # bank-level parallelism

    def test_colocated_allocation(self, driver):
        a = driver.allocate(GEO.subarray.row_bits * 3)
        b = driver.allocate(GEO.subarray.row_bits * 3, like=a)
        assert driver.colocated(a, b)

    def test_colocation_template_size_checked(self, driver):
        a = driver.allocate(GEO.subarray.row_bits * 2)
        with pytest.raises(AllocationError):
            driver.allocate(GEO.subarray.row_bits * 3, like=a)

    def test_free_returns_rows(self, driver):
        before = driver.free_rows()
        handle = driver.allocate(GEO.subarray.row_bits * 3)
        assert driver.free_rows() == before - 3
        driver.free(handle)
        assert driver.free_rows() == before

    def test_double_free_rejected(self, driver):
        handle = driver.allocate(GEO.subarray.row_bits)
        rows = list(handle.rows)
        driver.free(handle)
        handle.rows = rows
        with pytest.raises(AllocationError):
            driver.free(handle)

    def test_exhaustion(self, driver):
        total = driver.free_rows()
        driver.allocate(GEO.subarray.row_bits * total)
        with pytest.raises(AllocationError):
            driver.allocate(GEO.subarray.row_bits)

    def test_exhaustion_rolls_back(self, driver):
        total = driver.free_rows()
        before = driver.free_rows()
        with pytest.raises(AllocationError):
            driver.allocate(GEO.subarray.row_bits * (total + 1))
        assert driver.free_rows() == before

    def test_colocated_subarray_fills_up(self, driver):
        # A single subarray has USABLE rows; co-locating more fails.
        a = driver.allocate(GEO.subarray.row_bits)
        likes = [a]
        for _ in range(USABLE - 1):
            likes.append(driver.allocate(GEO.subarray.row_bits, like=a))
        with pytest.raises(AllocationError):
            driver.allocate(GEO.subarray.row_bits, like=a)


class TestScratchAndStaging:
    def test_scratch_rows_not_allocated(self, driver):
        scratch_addrs = {
            driver.scratch_row(0, 0, i).address
            for i in range(SCRATCH_ROWS_PER_SUBARRAY)
        }
        total = driver.free_rows()
        handles = [
            driver.allocate(GEO.subarray.row_bits) for _ in range(total)
        ]
        for h in handles:
            for r in h.rows:
                if (r.bank, r.subarray) == (0, 0):
                    assert r.address not in scratch_addrs

    def test_scratch_index_checked(self, driver):
        with pytest.raises(AllocationError):
            driver.scratch_row(0, 0, SCRATCH_ROWS_PER_SUBARRAY)

    def test_stage_noop_when_colocated(self, device, driver):
        a = RowLocation(0, 0, 1)
        assert stage_row(device, a, RowLocation(0, 0, 2)) == a

    def test_stage_across_banks(self, device, driver, rng=np.random.default_rng(1)):
        data = rng.integers(0, 2**63, size=GEO.subarray.words_per_row, dtype=np.uint64)
        src = RowLocation(0, 0, 1)
        target = RowLocation(1, 0, 2)
        device.write_row(src, data)
        staged = stage_row(device, src, target)
        assert (staged.bank, staged.subarray) == (1, 0)
        assert np.array_equal(device.read_row(staged), data)

    def test_stage_across_subarrays_same_bank(self, device, driver):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2**63, size=GEO.subarray.words_per_row, dtype=np.uint64)
        src = RowLocation(0, 0, 1)
        target = RowLocation(0, 1, 2)
        device.write_row(src, data)
        staged = stage_row(device, src, target)
        assert (staged.bank, staged.subarray) == (0, 1)
        assert np.array_equal(device.read_row(staged), data)

    def test_staged_op_end_to_end(self, device, driver):
        # Operands in different subarrays still compute correctly.
        rng = np.random.default_rng(3)
        words = GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        la, lb = RowLocation(0, 0, 0), RowLocation(1, 1, 0)
        dst = RowLocation(0, 0, 2)
        device.write_row(la, a)
        device.write_row(lb, b)
        staged_b = stage_row(device, lb, dst)
        device.bbop_row(BulkOp.AND, dst, la, staged_b)
        assert np.array_equal(device.read_row(dst), a & b)

    def test_staging_charges_time(self, device, driver):
        before = device.busy_ns
        stage_row(device, RowLocation(0, 0, 1), RowLocation(1, 0, 2))
        assert device.busy_ns > before


class TestRollbackAndColocation:
    def _fill_stripe(self, driver, bank, sub, leave=0):
        """Drain a stripe down to ``leave`` free rows via co-location."""
        template = BitVectorHandle(
            nbits=GEO.subarray.row_bits,
            rows=[RowLocation(bank, sub, 0)],
        )
        handles = []
        while len(driver._free[(bank, sub)]) > leave:
            handles.append(
                driver.allocate(GEO.subarray.row_bits, like=template)
            )
        return handles

    def test_colocated_partial_failure_rolls_back(self, driver):
        # a's chunks land in stripes (0,0) and (1,0); fill (1,0) so the
        # co-located allocation succeeds on chunk 0 and fails on chunk 1.
        a = driver.allocate(GEO.subarray.row_bits * 2)
        assert [(r.bank, r.subarray) for r in a.rows] == [(0, 0), (1, 0)]
        self._fill_stripe(driver, 1, 0)
        before = driver.free_rows()
        assert len(driver._free[(0, 0)]) > 0  # chunk 0 will succeed
        with pytest.raises(AllocationError, match="full"):
            driver.allocate(GEO.subarray.row_bits * 2, like=a)
        assert driver.free_rows() == before
        # The rolled-back chunk-0 row is genuinely reusable.
        stripe_before = len(driver._free[(0, 0)])
        driver.allocate(
            GEO.subarray.row_bits,
            like=BitVectorHandle(
                nbits=GEO.subarray.row_bits, rows=[RowLocation(0, 0, 0)]
            ),
        )
        assert len(driver._free[(0, 0)]) == stripe_before - 1

    def test_colocated_false_across_banks(self, driver):
        a = BitVectorHandle(
            nbits=GEO.subarray.row_bits, rows=[RowLocation(0, 0, 0)]
        )
        b = BitVectorHandle(
            nbits=GEO.subarray.row_bits, rows=[RowLocation(1, 0, 0)]
        )
        assert not driver.colocated(a, b)
        assert not driver.colocated(b, a)

    def test_colocated_false_across_subarrays(self, driver):
        a = BitVectorHandle(
            nbits=GEO.subarray.row_bits, rows=[RowLocation(0, 0, 0)]
        )
        b = BitVectorHandle(
            nbits=GEO.subarray.row_bits, rows=[RowLocation(0, 1, 0)]
        )
        assert not driver.colocated(a, b)

    def test_colocated_false_on_row_count_mismatch(self, driver):
        a = driver.allocate(GEO.subarray.row_bits)
        b = driver.allocate(GEO.subarray.row_bits * 2)
        assert not driver.colocated(a, b)

    def test_live_queue_recovers_after_exhaustion(self, driver):
        # Regression for the O(1) round-robin queue: a drained stripe
        # leaves the live queue, and freeing a row must re-queue it.
        total = driver.free_rows()
        handles = [
            driver.allocate(GEO.subarray.row_bits) for _ in range(total)
        ]
        assert driver.free_rows() == 0
        with pytest.raises(AllocationError):
            driver.allocate(GEO.subarray.row_bits)
        victim = handles.pop()
        freed_stripe = (victim.rows[0].bank, victim.rows[0].subarray)
        driver.free(victim)
        again = driver.allocate(GEO.subarray.row_bits)
        assert (again.rows[0].bank, again.rows[0].subarray) == freed_stripe

    def test_round_robin_skips_drained_stripes(self, driver):
        # Drain stripe (0,0) entirely through co-location (the live
        # queue never observes it); round-robin must skip it lazily.
        self._fill_stripe(driver, 0, 0)
        remaining = driver.free_rows()
        handles = [
            driver.allocate(GEO.subarray.row_bits) for _ in range(remaining)
        ]
        assert driver.free_rows() == 0
        assert all(
            (h.rows[0].bank, h.rows[0].subarray) != (0, 0) for h in handles
        )
