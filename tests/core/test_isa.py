"""The bbop ISA: offload checks and CPU fallback (Sections 5.4.1/5.4.3)."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.isa import (
    BbopInstruction,
    execute_bbop,
    is_offloadable,
    read_bytes,
    write_bytes,
)
from repro.core.microprograms import BulkOp
from repro.dram.geometry import small_test_geometry
from repro.errors import AlignmentError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)
ROW = GEO.row_bytes


@pytest.fixture
def device():
    return AmbitDevice(geometry=GEO)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


def _fill(device, address, size, rng):
    data = rng.integers(0, 256, size=size, dtype=np.uint8)
    write_bytes(device, address, data)
    return data


class TestOffloadCheck:
    def test_aligned_row_multiple_offloads(self):
        instr = BbopInstruction(BulkOp.AND, dst=0, src1=ROW, src2=2 * ROW, size=ROW)
        assert is_offloadable(instr, ROW)

    def test_unaligned_source_falls_back(self):
        instr = BbopInstruction(BulkOp.AND, dst=0, src1=ROW + 8, src2=2 * ROW, size=ROW)
        assert not is_offloadable(instr, ROW)

    def test_unaligned_destination_falls_back(self):
        instr = BbopInstruction(BulkOp.AND, dst=4, src1=ROW, src2=2 * ROW, size=ROW)
        assert not is_offloadable(instr, ROW)

    def test_partial_row_falls_back(self):
        instr = BbopInstruction(BulkOp.AND, dst=0, src1=ROW, src2=2 * ROW, size=ROW // 2)
        assert not is_offloadable(instr, ROW)

    def test_arity_validated(self):
        with pytest.raises(AlignmentError):
            BbopInstruction(BulkOp.NOT, dst=0, src1=ROW, src2=2 * ROW, size=ROW)
        with pytest.raises(AlignmentError):
            BbopInstruction(BulkOp.AND, dst=0, src1=ROW, size=ROW)

    def test_size_validated(self):
        with pytest.raises(AlignmentError):
            BbopInstruction(BulkOp.NOT, dst=0, src1=ROW, size=0)


class TestExecution:
    def test_offloaded_result_correct(self, device, rng):
        a = _fill(device, ROW, ROW, rng)
        b = _fill(device, 2 * ROW, ROW, rng)
        outcome = execute_bbop(
            device, BbopInstruction(BulkOp.AND, dst=0, src1=ROW, src2=2 * ROW, size=ROW)
        )
        assert outcome.offloaded and outcome.rows_processed == 1
        assert np.array_equal(read_bytes(device, 0, ROW), a & b)

    def test_multi_row_offload(self, device, rng):
        size = 2 * ROW
        a = _fill(device, 2 * ROW, size, rng)
        b = _fill(device, 4 * ROW, size, rng)
        outcome = execute_bbop(
            device,
            BbopInstruction(BulkOp.XOR, dst=0, src1=2 * ROW, src2=4 * ROW, size=size),
        )
        assert outcome.offloaded and outcome.rows_processed == 2
        assert np.array_equal(read_bytes(device, 0, size), a ^ b)

    def test_cpu_fallback_result_correct(self, device, rng):
        # Misaligned by one word: the CPU path must produce the same
        # answer.
        a = _fill(device, ROW + 8, ROW, rng)
        b = _fill(device, 3 * ROW + 8, ROW, rng)
        outcome = execute_bbop(
            device,
            BbopInstruction(
                BulkOp.OR, dst=8, src1=ROW + 8, src2=3 * ROW + 8, size=ROW
            ),
        )
        assert not outcome.offloaded
        assert np.array_equal(read_bytes(device, 8, ROW), a | b)

    def test_fallback_sub_row_size(self, device, rng):
        a = _fill(device, ROW, 16, rng)
        outcome = execute_bbop(
            device, BbopInstruction(BulkOp.NOT, dst=0, src1=ROW, size=16)
        )
        assert not outcome.offloaded
        assert np.array_equal(read_bytes(device, 0, 16), ~a)

    def test_offload_stages_cross_subarray_operands(self, device, rng):
        # Choose rows that the flat map puts in different subarrays.
        per_sub = GEO.subarray.data_rows
        src_row = per_sub  # first row of subarray 1
        a = _fill(device, 0 * ROW, ROW, rng)
        b = _fill(device, src_row * ROW, ROW, rng)
        outcome = execute_bbop(
            device,
            BbopInstruction(
                BulkOp.AND, dst=ROW, src1=0, src2=src_row * ROW, size=ROW
            ),
        )
        assert outcome.offloaded and outcome.staged
        assert np.array_equal(read_bytes(device, ROW, ROW), a & b)

    def test_every_op_via_fallback_matches_offload(self, device, rng):
        for op in (BulkOp.AND, BulkOp.OR, BulkOp.XOR, BulkOp.NAND,
                   BulkOp.NOR, BulkOp.XNOR):
            a = _fill(device, ROW, ROW, rng)
            b = _fill(device, 2 * ROW, ROW, rng)
            execute_bbop(
                device,
                BbopInstruction(op, dst=0, src1=ROW, src2=2 * ROW, size=ROW),
            )
            offloaded = read_bytes(device, 0, ROW)
            # Re-run through the CPU path at a misaligned destination.
            _fill(device, 3 * ROW, 8, rng)  # noise
            execute_bbop(
                device,
                BbopInstruction(
                    op, dst=3 * ROW + 8, src1=ROW, src2=2 * ROW, size=ROW - 8
                ),
            )
            fallback = read_bytes(device, 3 * ROW + 8, ROW - 8)
            assert np.array_equal(offloaded[: ROW - 8], fallback), op


class TestByteAccess:
    def test_roundtrip(self, device, rng):
        data = rng.integers(0, 256, size=3 * ROW + 24, dtype=np.uint8)
        write_bytes(device, 40, data)
        assert np.array_equal(read_bytes(device, 40, data.size), data)

    def test_unaligned_crossing_rows(self, device, rng):
        data = rng.integers(0, 256, size=ROW, dtype=np.uint8)
        write_bytes(device, ROW - 8, data)
        assert np.array_equal(read_bytes(device, ROW - 8, ROW), data)
