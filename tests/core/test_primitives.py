"""AAP/AP primitives and the split-decoder timing (Section 5.3)."""

import pytest

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import BulkOp, compile_op
from repro.core.primitives import AAP, AP, sequence_latency_ns
from repro.dram.commands import Opcode
from repro.dram.geometry import SubarrayGeometry
from repro.dram.timing import ddr3_1600

GEO = SubarrayGeometry(rows=1024, row_bytes=8192)


@pytest.fixture
def amap():
    return AmbitAddressMap(GEO)


@pytest.fixture
def timing():
    return ddr3_1600()


class TestCommandExpansion:
    def test_aap_commands(self):
        cmds = list(AAP(3, 7).commands(bank=1, subarray=2))
        assert [c.opcode for c in cmds] == [
            Opcode.ACTIVATE,
            Opcode.ACTIVATE,
            Opcode.PRECHARGE,
        ]
        assert cmds[0].row == 3 and cmds[1].row == 7
        assert all(c.bank == 1 and c.subarray == 2 for c in cmds)

    def test_ap_commands(self):
        cmds = list(AP(5).commands(bank=0, subarray=0))
        assert [c.opcode for c in cmds] == [Opcode.ACTIVATE, Opcode.PRECHARGE]


class TestLatency:
    def test_overlapped_aap(self, amap, timing):
        # D-group + B-group: decoders overlap -> 49 ns.
        aap = AAP(3, amap.b(0))
        assert aap.latency_ns(timing, amap) == pytest.approx(49.0)

    def test_b_to_d_also_overlaps(self, amap, timing):
        aap = AAP(amap.b(12), 3)
        assert aap.latency_ns(timing, amap) == pytest.approx(49.0)

    def test_both_b_group_serialises(self, amap, timing):
        # nand's AAP(B12, B5): both on the small decoder -> 80 ns.
        aap = AAP(amap.b(12), amap.b(5))
        assert aap.latency_ns(timing, amap) == pytest.approx(80.0)

    def test_both_d_group_serialises(self, amap, timing):
        # A plain RowClone copy between data rows has no decoder split.
        aap = AAP(3, 7)
        assert aap.latency_ns(timing, amap) == pytest.approx(80.0)

    def test_split_decoder_disabled(self, amap, timing):
        aap = AAP(3, amap.b(0))
        assert aap.latency_ns(timing, amap, split_decoder=False) == pytest.approx(
            80.0
        )

    def test_ap_latency(self, amap, timing):
        assert AP(amap.b(14)).latency_ns(timing, amap) == pytest.approx(45.0)


class TestOperationLatencies:
    """End-to-end per-op latencies on DDR3-1600."""

    @pytest.mark.parametrize(
        "op,expected_ns",
        [
            # not: 2 overlapped AAPs.
            (BulkOp.NOT, 2 * 49.0),
            # and/or: 3 overlapped AAPs + TRA AAP (overlapped).
            (BulkOp.AND, 4 * 49.0),
            (BulkOp.OR, 4 * 49.0),
            # nand/nor: 4 overlapped + the B12->B5 serial AAP.
            (BulkOp.NAND, 4 * 49.0 + 80.0),
            (BulkOp.NOR, 4 * 49.0 + 80.0),
            # xor/xnor: 5 overlapped AAPs + 2 APs.
            (BulkOp.XOR, 5 * 49.0 + 2 * 45.0),
            (BulkOp.XNOR, 5 * 49.0 + 2 * 45.0),
        ],
    )
    def test_latency(self, amap, timing, op, expected_ns):
        prog = compile_op(amap, op, 11, 3, None if op.arity == 1 else 7)
        assert sequence_latency_ns(prog.primitives, timing, amap) == pytest.approx(
            expected_ns
        )

    def test_naive_mode_is_uniform_80ns_per_aap(self, amap, timing):
        prog = compile_op(amap, BulkOp.AND, 11, 3, 7)
        latency = sequence_latency_ns(
            prog.primitives, timing, amap, split_decoder=False
        )
        assert latency == pytest.approx(4 * 80.0)
