"""Reduction compilation and the minimal-B-group xor (ablation bases)."""

import numpy as np
import pytest

from repro.core.addressing import AmbitAddressMap
from repro.core.device import AmbitDevice
from repro.core.microprograms import (
    BulkOp,
    compile_reduction,
    compile_xor_minimal,
)
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import AddressError

GEO = small_test_geometry(rows=32, row_bytes=64, banks=1, subarrays_per_bank=1)
WORDS = GEO.subarray.words_per_row


@pytest.fixture
def device():
    return AmbitDevice(geometry=GEO)


@pytest.fixture
def amap():
    return AmbitAddressMap(GEO.subarray)


@pytest.fixture
def rng():
    return np.random.default_rng(71)


def _vectors(rng, n):
    return [rng.integers(0, 2**63, size=WORDS, dtype=np.uint64) for _ in range(n)]


class TestReduction:
    @pytest.mark.parametrize("op,fold", [
        (BulkOp.AND, lambda a, b: a & b),
        (BulkOp.OR, lambda a, b: a | b),
    ])
    @pytest.mark.parametrize("optimize", [True, False])
    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_correct(self, device, rng, op, fold, optimize, n):
        vectors = _vectors(rng, n)
        expected = vectors[0]
        for v in vectors[1:]:
            expected = fold(expected, v)
        for i, v in enumerate(vectors):
            device.write_row(RowLocation(0, 0, i), v)
        prog = compile_reduction(
            device.amap, op, tuple(range(n)), 10, optimize=optimize
        )
        device.controller.run_program(prog, 0, 0)
        assert np.array_equal(device.read_row(RowLocation(0, 0, 10)), expected)

    def test_optimized_uses_fewer_primitives(self, amap):
        for n in (2, 4, 8):
            opt = compile_reduction(amap, BulkOp.AND, tuple(range(n)), 10)
            naive = compile_reduction(
                amap, BulkOp.AND, tuple(range(n)), 10, optimize=False
            )
            # Optimised: 1 + 3(n-1); naive: 4(n-1).  Equal for a single
            # step (n=2), strictly better once the accumulator recurs.
            assert len(opt.primitives) == 1 + 3 * (n - 1)
            assert len(naive.primitives) == 4 * (n - 1)
            if n > 2:
                assert len(opt.primitives) < len(naive.primitives)

    def test_sources_preserved_in_optimized_form(self, device, rng):
        vectors = _vectors(rng, 3)
        for i, v in enumerate(vectors):
            device.write_row(RowLocation(0, 0, i), v)
        prog = compile_reduction(device.amap, BulkOp.OR, (0, 1, 2), 10)
        device.controller.run_program(prog, 0, 0)
        for i, v in enumerate(vectors):
            assert np.array_equal(device.read_row(RowLocation(0, 0, i)), v)

    def test_validation(self, amap):
        with pytest.raises(AddressError):
            compile_reduction(amap, BulkOp.XOR, (0, 1), 5)
        with pytest.raises(AddressError):
            compile_reduction(amap, BulkOp.AND, (0,), 5)
        with pytest.raises(AddressError):
            compile_reduction(amap, BulkOp.AND, (0, 1), amap.b(0))


class TestXorMinimal:
    def test_correct(self, device, rng):
        a, b = _vectors(rng, 2)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        for prog in compile_xor_minimal(device.amap, 0, 1, 2):
            device.controller.run_program(prog, 0, 0)
        assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), a ^ b)

    def test_explicit_scratch_rows(self, device, rng):
        a, b = _vectors(rng, 2)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        for prog in compile_xor_minimal(device.amap, 0, 1, 2, scratch=(7, 8)):
            device.controller.run_program(prog, 0, 0)
        assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), a ^ b)

    def test_more_expensive_than_paper_xor(self, amap):
        from repro.core.microprograms import compile_xor

        minimal = sum(
            len(p.primitives) for p in compile_xor_minimal(amap, 0, 1, 2)
        )
        paper = len(compile_xor(amap, 0, 1, 2).primitives)
        assert minimal > 2 * paper

    def test_distinct_rows_required(self, amap):
        with pytest.raises(AddressError):
            compile_xor_minimal(amap, 0, 1, 2, scratch=(2, 3))
