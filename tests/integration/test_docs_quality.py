"""Documentation quality gate: every public item carries a docstring.

"(e) Documentation -- doc comments on every public item" is a
deliverable; this test makes it enforceable rather than aspirational.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def _public_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


class TestDocstrings:
    def test_package_has_modules(self):
        assert len(MODULES) > 30

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their source
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for mname, method in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ and method.__doc__.strip()):
                        undocumented.append(
                            f"{module.__name__}.{name}.{mname}"
                        )
        assert not undocumented, f"missing docstrings: {undocumented}"
