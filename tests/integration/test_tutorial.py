"""Execute every python block of docs/TUTORIAL.md (docs stay runnable)."""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).parents[2] / "docs" / "TUTORIAL.md"


def _blocks():
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


BLOCKS = _blocks()


class TestTutorial:
    def test_has_blocks(self):
        assert len(BLOCKS) >= 6

    def test_all_blocks_execute_in_sequence(self):
        """The tutorial is a single narrative: blocks share a namespace
        (step 2 uses step 1's chip), so execute them in order.  The
        full-size device in step 5 is shrunk to keep the test quick."""
        namespace = {}
        for i, block in enumerate(BLOCKS):
            code = block.replace(
                "system = AmbitBitSystem()   # paper-sized device: 8 banks, 8 KB rows",
                "from repro import small_test_geometry\n"
                "system = AmbitBitSystem(geometry=small_test_geometry("
                "rows=40, row_bytes=2048, banks=2, subarrays_per_bank=2))",
            ).replace("300_000", "30_000")
            exec(compile(code, f"TUTORIAL-block-{i}", "exec"), namespace)
        assert "eligible" in namespace
