"""Failure injection: analog TRA errors and what masks them.

Runs the full device with the calibrated analog model at Table 2
variation levels, measures real result-bit error rates, and shows

* NOT-based operations stay clean (no TRA involved),
* TMR ECC masks most variation-induced TRA errors (independent
  failures across three replicas, majority vote),
* the error rate tracks the Monte-Carlo prediction.
"""

import numpy as np
import pytest

from repro.circuit import AnalogSenseModel, VariationSpec, tra_failure_rate
from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.core.ecc import TmrMemory
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry

GEO = small_test_geometry(rows=32, row_bytes=1024, banks=1, subarrays_per_bank=1)
ROW_BITS = GEO.subarray.row_bits
WORDS = GEO.subarray.words_per_row


def _analog_device(level, seed=0):
    counter = [seed]

    def factory():
        counter[0] += 1
        return AnalogSenseModel(
            VariationSpec(level=level), np.random.default_rng(counter[0])
        )

    return AmbitDevice(geometry=GEO, charge_model_factory=factory)


def _popcount(arr) -> int:
    return int(sum(int(x).bit_count() for x in np.asarray(arr, dtype=np.uint64)))


class TestErrorRates:
    def test_error_rate_tracks_monte_carlo(self):
        level, trials = 0.20, 20
        rng = np.random.default_rng(11)
        wrong = total = 0
        device = _analog_device(level)
        for t in range(trials):
            a = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
            b = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
            device.write_row(RowLocation(0, 0, 0), a)
            device.write_row(RowLocation(0, 0, 1), b)
            device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2),
                            RowLocation(0, 0, 0), RowLocation(0, 0, 1))
            got = device.read_row(RowLocation(0, 0, 2))
            wrong += _popcount(got ^ (a & b))
            total += ROW_BITS
        measured = wrong / total
        predicted = tra_failure_rate(
            level, trials=50_000, rng=np.random.default_rng(1)
        ).failure_rate
        # Same order of magnitude (the device TRA sees random operand
        # bits, like the "random" MC pattern).
        assert predicted / 3 <= measured <= predicted * 3

    def test_not_is_error_free_under_variation(self):
        device = _analog_device(0.25)
        rng = np.random.default_rng(3)
        for _ in range(5):
            a = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
            device.write_row(RowLocation(0, 0, 0), a)
            device.bbop_row(BulkOp.NOT, RowLocation(0, 0, 2), RowLocation(0, 0, 0))
            assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), ~a)

    def test_copy_is_error_free_under_variation(self):
        device = _analog_device(0.25)
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.bbop_row(BulkOp.COPY, RowLocation(0, 0, 3), RowLocation(0, 0, 0))
        assert np.array_equal(device.read_row(RowLocation(0, 0, 3)), a)


class TestTmrMasking:
    def test_tmr_reduces_tra_error_rate(self):
        """Independent per-replica TRA failures are mostly corrected by
        the majority vote: per marginal bit, q -> ~3*q^2.  At +/-15 %
        variation (q ~ 0.07) that is a ~5x error-rate reduction; at
        higher variation q grows and the advantage shrinks."""
        level = 0.15
        rng = np.random.default_rng(7)
        device = _analog_device(level)
        driver = AmbitDriver(device)
        tmr = TmrMemory(device, driver)

        raw_wrong = tmr_wrong = total = 0
        a_row = tmr.allocate_row()
        b_row = tmr.allocate_row(like=a_row)
        dst_row = tmr.allocate_row(like=a_row)
        for _ in range(12):
            a = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
            b = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
            expected = a & b
            # Unprotected op.
            device.write_row(RowLocation(0, 0, 0), a)
            device.write_row(RowLocation(0, 0, 1), b)
            device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2),
                            RowLocation(0, 0, 0), RowLocation(0, 0, 1))
            raw_wrong += _popcount(
                device.read_row(RowLocation(0, 0, 2)) ^ expected
            )
            # TMR-protected op.
            tmr.write(a_row, a)
            tmr.write(b_row, b)
            tmr.bbop(BulkOp.AND, dst_row, a_row, b_row)
            tmr_wrong += _popcount(tmr.read(dst_row).data ^ expected)
            total += ROW_BITS

        assert raw_wrong > 0, "expected TRA errors at +/-20% variation"
        # Majority voting suppresses the error rate by well over 2x
        # (quadratic suppression minus replica-correlation noise).
        assert tmr_wrong < raw_wrong / 2
