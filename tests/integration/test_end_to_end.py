"""End-to-end integration: whole-stack flows across modules."""

import numpy as np
import pytest

from repro.apps.bitvector import AmbitBitSystem
from repro.circuit import AnalogSenseModel, VariationSpec
from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import DramGeometry, SubarrayGeometry, small_test_geometry
from repro.energy import trace_energy_nj


class TestBitVectorPipeline:
    """A realistic multi-step workload through the public API."""

    def test_query_pipeline(self):
        system = AmbitBitSystem(
            geometry=small_test_geometry(
                rows=32, row_bytes=128, banks=2, subarrays_per_bank=2
            )
        )
        rng = np.random.default_rng(1)
        n = 3000
        active = rng.random(n) < 0.4
        premium = rng.random(n) < 0.2
        flagged = rng.random(n) < 0.1

        v_active = system.from_bits(active)
        v_premium = system.from_bits(premium, like=v_active)
        v_flagged = system.from_bits(flagged, like=v_active)

        # active premium users who are not flagged
        eligible = (v_active & v_premium) & (~v_flagged)
        expected = active & premium & ~flagged
        assert np.array_equal(eligible.to_bits(), expected)
        assert eligible.popcount() == int(expected.sum())

        # Device accounting is live: commands were really issued.
        acts, pres, _, _ = system.device.chip.trace.counts()
        assert acts > 0 and pres > 0
        assert system.elapsed_ns > 0
        assert trace_energy_nj(
            system.device.chip.trace, system.device.row_bytes
        ) > 0


class TestAnalogDevice:
    """The full device with the circuit-level model plugged in."""

    GEO = small_test_geometry(rows=24, row_bytes=64, banks=1, subarrays_per_bank=1)

    def _device(self, level, seed=5):
        return AmbitDevice(
            geometry=self.GEO,
            charge_model_factory=lambda: AnalogSenseModel(
                VariationSpec(level=level), np.random.default_rng(seed)
            ),
        )

    def test_reliable_at_low_variation(self):
        device = self._device(0.05)
        rng = np.random.default_rng(2)
        words = self.GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), a & b)

    def test_errors_appear_at_high_variation(self):
        device = self._device(0.25)
        rng = np.random.default_rng(2)
        words = self.GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        got = device.read_row(RowLocation(0, 0, 2))
        wrong_bits = int(
            sum(int(x).bit_count() for x in np.asarray(got ^ (a & b)))
        )
        assert wrong_bits > 0  # Table 2 territory

    def test_not_unaffected_by_variation(self):
        # Section 6: "Ambit-NOT always works as expected and is not
        # affected by process variation" -- it involves no TRA.
        device = self._device(0.25)
        rng = np.random.default_rng(3)
        words = self.GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.bbop_row(BulkOp.NOT, RowLocation(0, 0, 2), RowLocation(0, 0, 0))
        assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), ~a)


class TestPaperConfiguration:
    """The full-size paper geometry works (just slower)."""

    def test_full_size_device_single_op(self):
        geo = DramGeometry(
            banks=8,
            subarrays_per_bank=1,
            subarray=SubarrayGeometry(rows=1024, row_bytes=8192),
        )
        device = AmbitDevice(geometry=geo)
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2**63, size=1024, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=1024, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), b)
        device.bbop_row(BulkOp.XOR, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        assert np.array_equal(device.read_row(RowLocation(0, 0, 2)), a ^ b)
        # 5 AAPs + 2 APs at DDR3-1600.
        assert device.elapsed_ns == pytest.approx(5 * 49.0 + 2 * 45.0)

    def test_one_bulk_op_moves_zero_bytes_over_channel(self):
        geo = DramGeometry(banks=1, subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo)
        rng = np.random.default_rng(5)
        a = rng.integers(0, 2**63, size=1024, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), a)
        device.reset_stats()
        device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        _, _, reads, writes = device.chip.trace.counts()
        assert reads == 0 and writes == 0  # the whole point of Ambit
