"""The one-shot reproduction report generator."""

import pytest

from repro.cli import main
from repro.report import ReportConfig, generate_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(ReportConfig(fast=True))

    def test_contains_every_experiment(self, report):
        for heading in ("Table 2", "Table 3", "Figure 9", "Figure 10",
                        "Figure 11", "Figure 12"):
            assert heading in report

    def test_paper_references_present(self, report):
        assert "paper: ~6%" in report or "Paper" in report
        assert "5.4x-6.6x" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|") and not line.startswith("|--"):
                assert line.rstrip().endswith("|"), line

    def test_fast_config_scales(self):
        fast, full = ReportConfig(fast=True), ReportConfig(fast=False)
        assert fast.mc_trials < full.mc_trials
        assert len(fast.fig12_elements) < len(full.fig12_elements)

    def test_cli_report_to_file(self, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", "--fast", "--output", str(out)]) == 0
        assert "Ambit reproduction report" in out.read_text()
