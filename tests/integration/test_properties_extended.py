"""Additional property-based tests over substrates and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.compression import wah_and, wah_decode, wah_encode, wah_or
from repro.apps.crypto import keystream, xor_decrypt, xor_encrypt
from repro.circuit.charge import charge_sharing_deviation
from repro.core.ecc import tmr_decode, tmr_encode
from repro.dram.senseamp import majority3
from repro.sim import CpuContext


def _bits(data: list) -> np.ndarray:
    return np.array(data, dtype=bool)


class TestWahProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=500))
    def test_roundtrip(self, data):
        bits = _bits(data)
        assert np.array_equal(wah_decode(wah_encode(bits)), bits)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 400),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.integers(0, 2**32),
    )
    def test_ops_match_numpy(self, n, da, db, seed):
        rng = np.random.default_rng(seed)
        a = rng.random(n) < da
        b = rng.random(n) < db
        assert np.array_equal(wah_decode(wah_and(wah_encode(a), wah_encode(b))), a & b)
        assert np.array_equal(wah_decode(wah_or(wah_encode(a), wah_encode(b))), a | b)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=1000))
    def test_never_larger_than_raw(self, data):
        bitmap = wah_encode(_bits(data))
        assert bitmap.compressed_words <= bitmap.uncompressed_groups


class TestCryptoProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=64),
        st.binary(min_size=1, max_size=16),
        st.binary(min_size=0, max_size=8),
    )
    def test_decrypt_inverts_encrypt(self, words, key, nonce):
        pt = np.array(words, dtype=np.uint64)
        ct = xor_encrypt(CpuContext(), pt, key, nonce)
        assert np.array_equal(xor_decrypt(CpuContext(), ct, key, nonce), pt)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=16), st.integers(1, 64))
    def test_keystream_length_and_determinism(self, key, n):
        a = keystream(key, b"n", n)
        assert a.size == n
        assert np.array_equal(a, keystream(key, b"n", n))


class TestTmrProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=16),
        st.integers(0, 2),
        st.integers(0, 63),
    )
    def test_single_replica_flip_always_corrected(self, words, replica, bit):
        data = np.array(words, dtype=np.uint64)
        replicas = list(tmr_encode(data))
        replicas[replica] = replicas[replica].copy()
        replicas[replica][0] ^= np.uint64(1) << np.uint64(bit)
        result = tmr_decode(*replicas)
        assert np.array_equal(result.data, data)
        assert result.corrected_bits == 1


class TestChargeSharingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(10e-15, 40e-15, allow_nan=False), min_size=3, max_size=3
        ),
        st.lists(st.integers(0, 1), min_size=3, max_size=3),
    )
    def test_sign_matches_majority_for_full_levels(self, caps, bits):
        # With fully charged/empty cells, arbitrary positive cell
        # capacitances never flip a unanimous (k=0 or k=3) result, and
        # the nominal-capacitance majority rule holds whenever caps are
        # equal.
        vdd = 1.5
        volts = [vdd * b for b in bits]
        delta = float(charge_sharing_deviation(caps, volts, 77e-15, vdd / 2))
        k = sum(bits)
        if k == 3:
            assert delta > 0
        elif k == 0:
            assert delta < 0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1),
           st.integers(0, 2**64 - 1))
    def test_majority_idempotent_and_bounded(self, a, b, c):
        arrs = [np.array([x], dtype=np.uint64) for x in (a, b, c)]
        out = int(majority3(*arrs)[0])
        # Majority is bounded by OR and contains AND of any pair.
        assert out & ~(a | b | c) == 0
        assert (a & b) & ~out == 0
        assert (b & c) & ~out == 0
        assert (a & c) & ~out == 0


class TestArithmeticProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(0, 2**10 - 1), min_size=1, max_size=200),
        st.lists(st.integers(0, 2**10 - 1), min_size=1, max_size=200),
    )
    def test_addition_matches_integers(self, xs, ys):
        from repro.apps.arithmetic import add_columns
        from repro.apps.bitweaving import BitWeavingColumn

        n = min(len(xs), len(ys))
        a = np.array(xs[:n], dtype=np.uint64)
        b = np.array(ys[:n], dtype=np.uint64)
        out = add_columns(
            CpuContext(),
            BitWeavingColumn.encode(a, 10),
            BitWeavingColumn.encode(b, 10),
        )
        assert np.array_equal(out.decode(), a + b)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 255)),
            min_size=1,
            max_size=150,
        )
    )
    def test_subtraction_matches_integers(self, pairs):
        from repro.apps.arithmetic import subtract_columns
        from repro.apps.bitweaving import BitWeavingColumn

        big = np.array([max(x, y) for x, y in pairs], dtype=np.uint64)
        small = np.array([min(x, y) for x, y in pairs], dtype=np.uint64)
        out = subtract_columns(
            CpuContext(),
            BitWeavingColumn.encode(big, 8),
            BitWeavingColumn.encode(small, 8),
        )
        assert np.array_equal(out.decode(), big - small)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 2**12 - 1), min_size=1, max_size=300))
    def test_sum_aggregate_matches_builtin(self, values):
        from repro.apps.arithmetic import sum_aggregate
        from repro.apps.bitweaving import BitWeavingColumn

        arr = np.array(values, dtype=np.uint64)
        column = BitWeavingColumn.encode(arr, 12)
        assert sum_aggregate(CpuContext(), column) == int(arr.sum())
