"""Ambit-3D: the mechanism at 3D-stacked-DRAM geometry.

Section 1: "since almost all DRAM technologies use the same underlying
DRAM microarchitecture, Ambit can be integrated with any of these DRAM
technologies."  We verify that claim holds in the model: a functional
device with HMC-like geometry (many banks, narrow rows) computes the
same results, and its measured throughput matches the Ambit-3D
analytical model bank-for-bank.
"""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.dram.timing import hmc_like
from repro.perf.systems import AmbitSystem, ambit_3d
from repro.perf.throughput import measure_ambit_functional

# A slice of the 256-bank HMC device: 16 banks is enough to verify the
# scaling law while keeping the functional model fast.
GEO_3D = DramGeometry(
    banks=16,
    subarrays_per_bank=1,
    subarray=SubarrayGeometry(rows=32, row_bytes=1024),
)


@pytest.fixture
def device():
    return AmbitDevice(geometry=GEO_3D, timing=hmc_like())


class TestFunctionalAt3dGeometry:
    @pytest.mark.parametrize("op", [BulkOp.AND, BulkOp.XOR, BulkOp.NOT])
    def test_ops_bit_exact(self, device, op):
        rng = np.random.default_rng(0)
        words = GEO_3D.subarray.words_per_row
        reference = {
            BulkOp.AND: lambda a, b: a & b,
            BulkOp.XOR: lambda a, b: a ^ b,
            BulkOp.NOT: lambda a, b: ~a,
        }
        for bank in range(0, GEO_3D.banks, 5):
            a = rng.integers(0, 2**64, size=words, dtype=np.uint64)
            b = rng.integers(0, 2**64, size=words, dtype=np.uint64)
            device.write_row(RowLocation(bank, 0, 0), a)
            device.write_row(RowLocation(bank, 0, 1), b)
            device.bbop_row(
                op,
                RowLocation(bank, 0, 2),
                RowLocation(bank, 0, 0),
                None if op.arity == 1 else RowLocation(bank, 0, 1),
            )
            assert np.array_equal(
                device.read_row(RowLocation(bank, 0, 2)), reference[op](a, b)
            )

    def test_functional_throughput_matches_model(self, device):
        model = AmbitSystem(
            "hmc-slice", timing=hmc_like(), banks=GEO_3D.banks, row_bytes=1024
        )
        measured = measure_ambit_functional(device, BulkOp.AND, rows_per_bank=2)
        assert measured == pytest.approx(
            model.throughput_gops(BulkOp.AND), rel=1e-6
        )

    def test_full_ambit_3d_extrapolates_linearly(self, device):
        # 256 banks = 16x the measured 16-bank slice.
        slice_model = AmbitSystem(
            "slice", timing=hmc_like(), banks=16, row_bytes=1024
        )
        assert ambit_3d().throughput_gops(BulkOp.AND) == pytest.approx(
            16 * slice_model.throughput_gops(BulkOp.AND)
        )

    def test_3d_beats_hmc_logic_layer(self):
        from repro.perf.systems import hmc20

        assert (
            ambit_3d().throughput_gops(BulkOp.AND)
            > 5 * hmc20().throughput_gops(BulkOp.AND)
        )
