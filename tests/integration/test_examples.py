"""Examples stay importable and their helpers behave.

The example scripts guard their entry points behind ``__main__``, so
importing them executes only definitions; the heavyweight mains run as
part of the documentation workflow, not the test suite.  For the
quickstart -- the example a new user runs first -- the whole main is
executed here.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "database_analytics",
            "column_scan",
            "web_search",
            "genome_filter",
            "secure_vault",
            "reliability_study",
            "social_network",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main_guard(self, path):
        module = _load(path)
        assert hasattr(module, "main"), path.stem

    def test_quickstart_main_runs(self, capsys):
        module = _load(next(p for p in EXAMPLES if p.stem == "quickstart"))
        module.main()
        out = capsys.readouterr().out
        assert "verified bit-exact" in out
        assert "AAP primitives" in out

    def test_social_network_graph_builder(self):
        import numpy as np

        module = _load(
            next(p for p in EXAMPLES if p.stem == "social_network")
        )
        graph, friendships = module.build_demo_graph(
            80, np.random.default_rng(0)
        )
        assert graph.num_nodes == 80 and friendships > 0
