"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(subparsers.choices) == {
            "list", "table2", "table3", "fig9", "fig10", "fig11", "fig12",
            "demo", "report", "profile", "bench", "metrics", "top",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.users == 8_000_000 and args.weeks == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        assert "table2" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "verified bit-exact" in out
        assert "ACTIVATEs" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Paper %" in out and "corner" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "nJ/KB" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "Ambit-3D" in capsys.readouterr().out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--users", "200000", "--weeks", "2"]) == 0
        assert "paper: 5.4-6.6X" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--rows", "100000", "--bits", "8"]) == 0
        assert "count(*)" in capsys.readouterr().out

    def test_fig12_small(self, capsys):
        assert main(["fig12", "--elements", "16"]) == 0
        out = capsys.readouterr().out
        assert "rbtree" in out and "ambit" in out
