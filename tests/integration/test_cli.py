"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(subparsers.choices) == {
            "list", "table2", "table3", "fig9", "fig10", "fig11", "fig12",
            "demo", "report", "profile", "bench", "metrics", "top",
            "chaos", "serve", "loadgen", "spans", "compile",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.users == 8_000_000 and args.weeks == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        assert "table2" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "verified bit-exact" in out
        assert "ACTIVATEs" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Paper %" in out and "corner" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "nJ/KB" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "Ambit-3D" in capsys.readouterr().out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--users", "200000", "--weeks", "2"]) == 0
        assert "paper: 5.4-6.6X" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--rows", "100000", "--bits", "8"]) == 0
        assert "count(*)" in capsys.readouterr().out

    def test_fig12_small(self, capsys):
        assert main(["fig12", "--elements", "16"]) == 0
        out = capsys.readouterr().out
        assert "rbtree" in out and "ambit" in out


#: One small deterministic soak: dense enough to guarantee at least one
#: injected fault, small enough to finish in well under a second.
CHAOS_ARGS = ["--ops", "40", "--seed", "0", "--fault-rate", "2e-2",
              "--banks", "1"]


class TestChaosExitCodes:
    def test_recovered_soak_exits_zero(self, capsys):
        assert main(["chaos"] + CHAOS_ARGS) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "recovered:" in out

    def test_no_recovery_exits_nonzero(self, capsys):
        """The same plan without recovery must fail the soak."""
        assert main(["chaos"] + CHAOS_ARGS + ["--no-recovery"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "unrecovered:" in out

    def test_scrape_prints_fault_families(self, capsys):
        assert main(["chaos"] + CHAOS_ARGS + ["--scrape"]) == 0
        out = capsys.readouterr().out
        assert "ambit_faults_injected_total" in out
        assert "ambit_faults_recovered_total" in out

    def test_bad_config_exits_two(self, capsys):
        assert main(["chaos", "--ops", "0"]) == 2
        assert "chaos:" in capsys.readouterr().err

    def test_bad_fault_rate_exits_two(self, capsys):
        assert main(["chaos", "--fault-rate", "2.0"]) == 2
        assert "fault rate" in capsys.readouterr().err

    def test_unknown_flag_is_argparse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--bogus"])
        assert excinfo.value.code == 2


class TestMetricsExitCodes:
    def test_success_exits_zero(self, capsys):
        assert main(["metrics", "and", "--repeats", "1",
                     "--row-bytes", "64"]) == 0
        assert "ambit_ops_total" in capsys.readouterr().out

    def test_unknown_workload_exits_two(self, capsys):
        assert main(["metrics", "bogus", "--repeats", "1"]) == 2
        assert "metrics:" in capsys.readouterr().err

    def test_bad_format_is_argparse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["metrics", "--format", "bogus"])
        assert excinfo.value.code == 2
