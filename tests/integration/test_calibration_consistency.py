"""Cross-model calibration consistency.

The repository contains several independent performance models; these
tests check that they tell one coherent story:

* the CPU cost model's effective DRAM streaming rate is consistent with
  the command-level FR-FCFS controller under a low-MLP access stream
  (the Table 4 CPU has a 64-entry instruction queue and one channel);
* the analytical Ambit throughput model agrees with both the functional
  device and the AAP latency identities;
* the energy model's AAP cost is consistent between the trace fold and
  the closed-form constants.
"""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.controller import FrFcfsScheduler, MemRequest, RequestType
from repro.dram.geometry import small_test_geometry
from repro.dram.timing import ddr4_2400
from repro.energy import DEFAULT_ENERGY, trace_energy_nj
from repro.perf import ambit
from repro.sim.cpu import CpuModel


class TestCpuDramRate:
    def test_streaming_rate_matches_frfcfs_low_mlp(self):
        """A dependent (one-outstanding-request) random-row stream on the
        command-level DDR4 model achieves ~the calibrated 2 GB/s."""
        timing = ddr4_2400()
        sched = FrFcfsScheduler(timing=timing, banks=16)
        rng = np.random.default_rng(0)
        n = 400
        # Low MLP: each request arrives when the previous finished.
        # Emulate by spacing arrivals at the single-request service time.
        service = timing.tRCD + timing.tCL + timing.tBL
        for i in range(n):
            sched.enqueue(
                MemRequest(
                    RequestType.READ,
                    bank=int(rng.integers(0, 16)),
                    row=int(rng.integers(0, 4096)),
                    arrival_ns=i * service,
                )
            )
        makespan, done = sched.run()
        achieved_gbps = n * 64 / makespan
        calibrated = CpuModel().config.dram_stream_gbps
        assert achieved_gbps == pytest.approx(calibrated, rel=0.25)

    def test_row_hits_would_be_faster(self):
        """The same stream with full row locality beats the calibrated
        rate -- i.e. the 2 GB/s models miss-dominated access, which is
        the right regime for multi-MB bitwise streaming."""
        timing = ddr4_2400()
        sched = FrFcfsScheduler(timing=timing, banks=16)
        service = timing.tCL + timing.tBL
        n = 400
        for i in range(n):
            sched.enqueue(
                MemRequest(RequestType.READ, bank=0, row=7,
                           arrival_ns=i * service)
            )
        makespan, _ = sched.run()
        achieved = n * 64 / makespan
        assert achieved > CpuModel().config.dram_stream_gbps


class TestAmbitModelConsistency:
    def test_throughput_equals_row_over_latency(self):
        model = ambit(banks=8)
        for op in (BulkOp.AND, BulkOp.NOT, BulkOp.XOR):
            expected = 8192 / model.op_latency_ns(op) * 8
            assert model.throughput_gops(op) == pytest.approx(expected)

    def test_device_latency_equals_model_latency(self):
        geo = small_test_geometry(rows=24, row_bytes=8192, banks=1,
                                  subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo)
        model = ambit(banks=1)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2**63, size=1024, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), a)
        for op in (BulkOp.AND, BulkOp.NAND, BulkOp.XOR):
            device.reset_stats()
            device.bbop_row(
                op, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                None if op.arity == 1 else RowLocation(0, 0, 1),
            )
            assert device.elapsed_ns == pytest.approx(model.op_latency_ns(op))


class TestEnergyConsistency:
    def test_aap_energy_constant(self):
        """One AAP (2 single-wordline ACTs + PRE) costs exactly
        2*act + pre = 6.4 nJ at the reference row size -- the constant
        Table 3's Ambit column is built from."""
        geo = small_test_geometry(rows=24, row_bytes=8192, banks=1,
                                  subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo)
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2**63, size=1024, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.reset_stats()
        device.bbop_row(BulkOp.COPY, RowLocation(0, 0, 2), RowLocation(0, 0, 0))
        energy = trace_energy_nj(device.chip.trace, device.row_bytes)
        params = DEFAULT_ENERGY
        assert energy == pytest.approx(2 * params.act_nj + params.pre_nj)

    def test_tra_surcharge_visible_in_trace(self):
        geo = small_test_geometry(rows=24, row_bytes=8192, banks=1,
                                  subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2**63, size=1024, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), a)
        device.write_row(RowLocation(0, 0, 1), a)
        device.reset_stats()
        device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        energy = trace_energy_nj(device.chip.trace, device.row_bytes)
        params = DEFAULT_ENERGY
        # 4 AAPs; the last one's first ACT raises 3 wordlines (+44%).
        plain = 4 * (2 * params.act_nj + params.pre_nj)
        expected = plain + params.act_nj * 0.44
        assert energy == pytest.approx(expected)
