"""Keep the README honest: its quickstart snippet must run as printed."""

import pathlib
import re

import numpy as np
import pytest

README = pathlib.Path(__file__).parents[2] / "README.md"


class TestReadme:
    def test_readme_exists_with_sections(self):
        text = README.read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Reproducing the paper"):
            assert heading in text

    def test_quickstart_snippet_executes(self):
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        # The snippet uses the full-size device; shrink the bit count so
        # the test stays fast while executing the identical code path.
        snippet = snippet.replace("1_000_000", "100_000")
        namespace = {}
        exec(compile(snippet, "README-quickstart", "exec"), namespace)
        # The snippet leaves the computed vector in scope; sanity check.
        assert "c" in namespace and namespace["c"].popcount() >= 0

    def test_headline_table_matches_measured_results(self):
        # The README's headline numbers must match the benchmark outputs
        # recorded under benchmarks/results/.
        text = README.read_text()
        assert "5.7–6.8×" in text or "5.7-6.8" in text
        assert "±6.0" in text or "+/-6.0" in text
