"""Property-based tests (hypothesis) over the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bitweaving import BitWeavingColumn, scan_range_ambit
from repro.apps.rbtree import RedBlackTree
from repro.core.addressing import AmbitAddressMap
from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp, compile_op
from repro.dram.chip import RowLocation
from repro.dram.geometry import SubarrayGeometry, small_test_geometry
from repro.dram.senseamp import majority3
from repro.sim import AmbitContext

GEO = small_test_geometry(rows=24, row_bytes=64, banks=1, subarrays_per_bank=1)
WORDS = GEO.subarray.words_per_row

uint64s = st.integers(min_value=0, max_value=2**64 - 1)
rows_strategy = st.lists(uint64s, min_size=WORDS, max_size=WORDS).map(
    lambda xs: np.array(xs, dtype=np.uint64)
)

REFERENCE = {
    BulkOp.NOT: lambda a, b: ~a,
    BulkOp.AND: lambda a, b: a & b,
    BulkOp.OR: lambda a, b: a | b,
    BulkOp.NAND: lambda a, b: ~(a & b),
    BulkOp.NOR: lambda a, b: ~(a | b),
    BulkOp.XOR: lambda a, b: a ^ b,
    BulkOp.XNOR: lambda a, b: ~(a ^ b),
}


def _fresh_device():
    return AmbitDevice(geometry=GEO)


def loc(a):
    return RowLocation(0, 0, a)


class TestBulkOpProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=rows_strategy, b=rows_strategy, op=st.sampled_from(list(REFERENCE)))
    def test_device_matches_numpy(self, a, b, op):
        device = _fresh_device()
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(op, loc(2), loc(0), None if op.arity == 1 else loc(1))
        assert np.array_equal(
            device.read_row(loc(2)), REFERENCE[op](a, b)
        )

    @settings(max_examples=20, deadline=None)
    @given(a=rows_strategy, b=rows_strategy)
    def test_de_morgan_in_dram(self, a, b):
        # nand(a, b) computed in DRAM equals or(not a, not b).
        device = _fresh_device()
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(BulkOp.NAND, loc(2), loc(0), loc(1))
        device.bbop_row(BulkOp.NOT, loc(3), loc(0))
        device.bbop_row(BulkOp.NOT, loc(4), loc(1))
        device.bbop_row(BulkOp.OR, loc(5), loc(3), loc(4))
        assert np.array_equal(device.read_row(loc(2)), device.read_row(loc(5)))

    @settings(max_examples=20, deadline=None)
    @given(a=rows_strategy)
    def test_double_not_is_identity(self, a):
        device = _fresh_device()
        device.write_row(loc(0), a)
        device.bbop_row(BulkOp.NOT, loc(1), loc(0))
        device.bbop_row(BulkOp.NOT, loc(2), loc(1))
        assert np.array_equal(device.read_row(loc(2)), a)

    @settings(max_examples=20, deadline=None)
    @given(a=rows_strategy, b=rows_strategy)
    def test_xor_self_inverse(self, a, b):
        device = _fresh_device()
        device.write_row(loc(0), a)
        device.write_row(loc(1), b)
        device.bbop_row(BulkOp.XOR, loc(2), loc(0), loc(1))
        device.bbop_row(BulkOp.XOR, loc(3), loc(2), loc(1))
        assert np.array_equal(device.read_row(loc(3)), a)


class TestMajorityProperties:
    @settings(max_examples=50, deadline=None)
    @given(a=uint64s, b=uint64s, c=uint64s)
    def test_majority_symmetric(self, a, b, c):
        arrs = [np.array([x], dtype=np.uint64) for x in (a, b, c)]
        out = majority3(*arrs)
        for perm in ((1, 0, 2), (2, 1, 0), (1, 2, 0)):
            assert np.array_equal(out, majority3(*[arrs[i] for i in perm]))

    @settings(max_examples=50, deadline=None)
    @given(a=uint64s, b=uint64s)
    def test_majority_with_zero_is_and(self, a, b):
        z = np.array([0], dtype=np.uint64)
        aa = np.array([a], dtype=np.uint64)
        bb = np.array([b], dtype=np.uint64)
        assert int(majority3(aa, bb, z)[0]) == a & b

    @settings(max_examples=50, deadline=None)
    @given(a=uint64s, b=uint64s)
    def test_majority_with_ones_is_or(self, a, b):
        ones = np.array([2**64 - 1], dtype=np.uint64)
        aa = np.array([a], dtype=np.uint64)
        bb = np.array([b], dtype=np.uint64)
        assert int(majority3(aa, bb, ones)[0]) == a | b


class TestMicroprogramProperties:
    AMAP = AmbitAddressMap(SubarrayGeometry(rows=1024, row_bytes=8192))

    @settings(max_examples=50, deadline=None)
    @given(
        op=st.sampled_from(list(REFERENCE)),
        di=st.integers(0, 1005),
        dj=st.integers(0, 1005),
        dk=st.integers(0, 1005),
    )
    def test_programs_end_precharged_and_target_dk_last(self, op, di, dj, dk):
        prog = compile_op(
            self.AMAP, op, dk, di, None if op.arity == 1 else dj
        )
        # Every program's final primitive writes the destination row.
        last = prog.primitives[-1]
        assert last.addr2 == dk
        # And every primitive precharges: program leaves the bank closed.
        assert prog.num_aap + prog.num_ap == len(prog.primitives)


class TestRbTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_matches_python_set(self, keys):
        tree = RedBlackTree()
        reference = set()
        for k in keys:
            assert tree.insert(k) == (k not in reference)
            reference.add(k)
        assert list(tree) == sorted(reference)
        tree.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=300)
    )
    def test_insert_delete_interleaved(self, ops):
        tree = RedBlackTree()
        reference = set()
        for insert, key in ops:
            if insert:
                tree.insert(key)
                reference.add(key)
            else:
                tree.delete(key)
                reference.discard(key)
        assert list(tree) == sorted(reference)
        tree.check_invariants()


class TestBitWeavingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.integers(0, 255), min_size=1, max_size=300),
        bounds=st.tuples(st.integers(0, 255), st.integers(0, 255)),
    )
    def test_scan_matches_numpy(self, values, bounds):
        c1, c2 = min(bounds), max(bounds)
        arr = np.array(values, dtype=np.uint64)
        col = BitWeavingColumn.encode(arr, 8)
        _, count = scan_range_ambit(AmbitContext(), col, c1, c2)
        assert count == int(((arr >= c1) & (arr <= c2)).sum())
