"""Stress tests: randomised operation streams against the full stack.

The invariants: the device never corrupts data it was not asked to
touch, every operation's result matches numpy, protocol violations are
always raised (never silent), and allocator bookkeeping stays exact
under churn.
"""

import numpy as np
import pytest

from repro.apps.bitvector import AmbitBitSystem
from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import DramProtocolError

GEO = small_test_geometry(rows=32, row_bytes=128, banks=2, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row

TWO_OP = [BulkOp.AND, BulkOp.OR, BulkOp.XOR, BulkOp.NAND, BulkOp.NOR, BulkOp.XNOR]

REFERENCE = {
    BulkOp.NOT: lambda a, b: ~a,
    BulkOp.COPY: lambda a, b: a,
    BulkOp.AND: lambda a, b: a & b,
    BulkOp.OR: lambda a, b: a | b,
    BulkOp.NAND: lambda a, b: ~(a & b),
    BulkOp.NOR: lambda a, b: ~(a | b),
    BulkOp.XOR: lambda a, b: a ^ b,
    BulkOp.XNOR: lambda a, b: ~(a ^ b),
}


class TestRandomOperationStreams:
    def test_long_random_program(self):
        """500 random ops over a shadowed register file of rows."""
        rng = np.random.default_rng(2024)
        device = AmbitDevice(geometry=GEO)
        n_rows = 8
        shadow = {}
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                for r in range(n_rows):
                    value = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
                    device.write_row(RowLocation(bank, sub, r), value)
                    shadow[(bank, sub, r)] = value
        for _ in range(500):
            bank = int(rng.integers(0, GEO.banks))
            sub = int(rng.integers(0, GEO.subarrays_per_bank))
            op = REFERENCE and list(REFERENCE)[int(rng.integers(0, 8))]
            di, dj, dk = (int(x) for x in rng.integers(0, n_rows, size=3))
            if op is BulkOp.COPY and di == dk:
                continue
            loc = lambda r: RowLocation(bank, sub, r)
            device.bbop_row(
                op, loc(dk), loc(di), None if op.arity == 1 else loc(dj)
            )
            shadow[(bank, sub, dk)] = REFERENCE[op](
                shadow[(bank, sub, di)], shadow[(bank, sub, dj)]
            )
            # Spot-check the destination plus one untouched row.
            assert np.array_equal(
                device.read_row(loc(dk)), shadow[(bank, sub, dk)]
            )
        # Full final sweep: every row matches its shadow.
        for (bank, sub, r), value in shadow.items():
            assert np.array_equal(
                device.read_row(RowLocation(bank, sub, r)), value
            )

    def test_interleaved_ops_across_banks_keep_isolation(self):
        rng = np.random.default_rng(7)
        device = AmbitDevice(geometry=GEO)
        a = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
        b = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
        # Stamp every subarray with distinct data.
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                device.write_row(RowLocation(bank, sub, 0), a + np.uint64(bank))
                device.write_row(RowLocation(bank, sub, 1), b + np.uint64(sub))
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                device.bbop_row(
                    BulkOp.XOR,
                    RowLocation(bank, sub, 2),
                    RowLocation(bank, sub, 0),
                    RowLocation(bank, sub, 1),
                )
        for bank in range(GEO.banks):
            for sub in range(GEO.subarrays_per_bank):
                expected = (a + np.uint64(bank)) ^ (b + np.uint64(sub))
                assert np.array_equal(
                    device.read_row(RowLocation(bank, sub, 2)), expected
                )


class TestBitVectorChurn:
    def test_allocate_free_cycle_conserves_rows(self):
        system = AmbitBitSystem(geometry=GEO)
        rng = np.random.default_rng(1)
        baseline = system.driver.free_rows()
        live = []
        for step in range(120):
            if live and (rng.random() < 0.45 or system.driver.free_rows() < 3):
                victim = live.pop(int(rng.integers(0, len(live))))
                victim.free()
            else:
                nbits = int(rng.integers(1, 3 * system.device.row_bits))
                try:
                    live.append(system.from_bits(rng.random(nbits) < 0.5))
                except Exception:
                    pass  # exhaustion is fine; freeing continues below
        for v in live:
            v.free()
        assert system.driver.free_rows() == baseline

    def test_results_stable_across_churn(self):
        system = AmbitBitSystem(geometry=GEO)
        rng = np.random.default_rng(3)
        bits_a = rng.random(1000) < 0.5
        bits_b = rng.random(1000) < 0.5
        a = system.from_bits(bits_a)
        b = system.from_bits(bits_b, like=a)
        keeper = a & b
        # Churn other vectors heavily.
        for _ in range(40):
            v = system.from_bits(rng.random(500) < 0.5)
            (~v).free()
            v.free()
        assert np.array_equal(keeper.to_bits(), bits_a & bits_b)


class TestProtocolViolationsAlwaysRaise:
    def test_no_silent_state_corruption_on_error(self):
        device = AmbitDevice(geometry=GEO)
        rng = np.random.default_rng(4)
        value = rng.integers(0, 2**64, size=WORDS, dtype=np.uint64)
        device.write_row(RowLocation(0, 0, 0), value)
        device.chip.activate(0, 0, 0)
        with pytest.raises(DramProtocolError):
            device.chip.activate(0, 1, 0)  # conflicting subarray
        device.chip.precharge(0)
        assert np.array_equal(device.read_row(RowLocation(0, 0, 0)), value)

    def test_bulk_op_rejected_cleanly_when_bank_open(self):
        device = AmbitDevice(geometry=GEO)
        device.chip.activate(0, 0, 0)
        before = len(device.chip.trace)
        with pytest.raises(DramProtocolError):
            device.controller.bbop(BulkOp.AND, 0, 0, dk=2, di=0, dj=1)
        assert len(device.chip.trace) == before  # nothing half-issued
