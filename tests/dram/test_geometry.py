"""Geometry arithmetic and validation."""

import pytest

from repro.dram.geometry import (
    NUM_BITWISE_STORAGE_ROWS,
    NUM_CONTROL_ROWS,
    DramGeometry,
    SubarrayGeometry,
    small_test_geometry,
)
from repro.errors import ConfigError


class TestSubarrayGeometry:
    def test_paper_default_has_1006_data_rows(self):
        # Figure 7: a 1024-row subarray exposes 1006 D-group addresses.
        geo = SubarrayGeometry(rows=1024, row_bytes=8192)
        assert geo.data_rows == 1006

    def test_reserved_rows_are_eight(self):
        assert NUM_BITWISE_STORAGE_ROWS + NUM_CONTROL_ROWS == 8

    def test_row_bits(self):
        assert SubarrayGeometry(rows=64, row_bytes=8192).row_bits == 65536

    def test_words_per_row(self):
        assert SubarrayGeometry(rows=64, row_bytes=8192).words_per_row == 1024

    def test_512_row_subarray_supported(self):
        geo = SubarrayGeometry(rows=512, row_bytes=8192)
        assert geo.data_rows == 512 - 18

    def test_too_few_rows_rejected(self):
        with pytest.raises(ConfigError):
            SubarrayGeometry(rows=8, row_bytes=64)

    def test_row_bytes_must_be_multiple_of_8(self):
        with pytest.raises(ConfigError):
            SubarrayGeometry(rows=32, row_bytes=63)

    def test_row_bytes_must_be_positive(self):
        with pytest.raises(ConfigError):
            SubarrayGeometry(rows=32, row_bytes=0)

    def test_storage_rows_equal_total_rows(self):
        geo = SubarrayGeometry(rows=128, row_bytes=64)
        assert geo.storage_rows == 128


class TestDramGeometry:
    def test_paper_default(self):
        geo = DramGeometry()
        assert geo.banks == 8
        assert geo.subarray.row_bytes == 8192

    def test_data_capacity(self):
        geo = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)
        per_sub = 32 - 18  # 16 B-group + 2 C-group addresses reserved
        assert geo.data_rows_per_bank == 2 * per_sub
        assert geo.data_capacity_bytes == 2 * 2 * per_sub * 64

    def test_invalid_banks(self):
        with pytest.raises(ConfigError):
            DramGeometry(banks=0)

    def test_invalid_subarrays(self):
        with pytest.raises(ConfigError):
            DramGeometry(subarrays_per_bank=0)

    def test_row_bytes_passthrough(self):
        geo = small_test_geometry(row_bytes=128)
        assert geo.row_bytes == 128
