"""Sense amplifier array: sensing, latching, protocol enforcement."""

import numpy as np
import pytest

from repro.dram.senseamp import SenseAmplifierArray, _pack_bits, _unpack_bits, majority3
from repro.errors import DramProtocolError

WORDS = 4


def _v(rng):
    return rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)


@pytest.fixture
def amps():
    return SenseAmplifierArray(WORDS)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestMajority3:
    def test_truth_table(self):
        # All 8 input combinations of the majority function.
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    arr = lambda x: np.array([np.uint64(0xFFFFFFFFFFFFFFFF * x)])
                    out = majority3(arr(a), arr(b), arr(c))
                    expected = 0xFFFFFFFFFFFFFFFF if a + b + c >= 2 else 0
                    assert int(out[0]) == expected, (a, b, c)

    def test_equals_rewritten_form(self, rng):
        # C(A+B) + !C(AB), the identity Section 3.1 relies on.
        a, b, c = _v(rng), _v(rng), _v(rng)
        rewritten = (c & (a | b)) | (~c & (a & b))
        assert np.array_equal(majority3(a, b, c), rewritten)


class TestSensing:
    def test_single_cell(self, amps, rng):
        v = _v(rng)
        assert np.array_equal(amps.sense([(v, False)]), v)

    def test_single_negated_cell(self, amps, rng):
        v = _v(rng)
        assert np.array_equal(amps.sense([(v, True)]), ~v)

    def test_three_cells_majority(self, amps, rng):
        a, b, c = _v(rng), _v(rng), _v(rng)
        out = amps.sense([(a, False), (b, False), (c, False)])
        assert np.array_equal(out, majority3(a, b, c))

    def test_three_cells_with_negation(self, amps, rng):
        a, b, c = _v(rng), _v(rng), _v(rng)
        out = amps.sense([(a, True), (b, False), (c, False)])
        assert np.array_equal(out, majority3(~a, b, c))

    def test_two_cells_rejected(self, amps, rng):
        with pytest.raises(DramProtocolError):
            amps.sense([(_v(rng), False), (_v(rng), False)])

    def test_sense_while_enabled_rejected(self, amps, rng):
        amps.sense([(_v(rng), False)])
        with pytest.raises(DramProtocolError):
            amps.sense([(_v(rng), False)])

    def test_precharge_resets(self, amps, rng):
        amps.sense([(_v(rng), False)])
        amps.precharge()
        assert not amps.enabled

    def test_latch_requires_enabled(self, amps):
        with pytest.raises(DramProtocolError):
            _ = amps.latch

    def test_overwrite_requires_enabled(self, amps, rng):
        with pytest.raises(DramProtocolError):
            amps.overwrite(_v(rng))

    def test_zero_width_rejected(self):
        with pytest.raises(DramProtocolError):
            SenseAmplifierArray(0)


class TestBitPacking:
    def test_roundtrip(self, rng):
        v = _v(rng)
        assert np.array_equal(_pack_bits(_unpack_bits(v), WORDS), v)

    def test_unpack_length(self, rng):
        assert _unpack_bits(_v(rng)).size == WORDS * 64
