"""Stuck-row and DCC fault injection on :class:`Subarray`.

Direct coverage of the fault ports the chaos/recovery layers build on:
``inject_stuck_row`` / ``clear_stuck_row`` validation, the pin-through
behaviour of writes and restores while a row is stuck, and the
no-rollback contract when the fault is cleared.
"""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import AddressError

BANK, SUB = 0, 0


@pytest.fixture
def dev():
    return AmbitDevice(
        geometry=small_test_geometry(
            rows=32, row_bytes=32, banks=1, subarrays_per_bank=1
        )
    )


@pytest.fixture
def sub(dev):
    return dev.chip.bank(BANK).subarray(SUB)


def pinned_value(sub):
    return np.full(
        sub.geometry.words_per_row, np.uint64(0xDEADBEEFDEADBEEF)
    )


class TestValidation:
    def test_inject_out_of_range_raises(self, sub):
        value = pinned_value(sub)
        with pytest.raises(AddressError):
            sub.inject_stuck_row(sub.geometry.storage_rows, value)
        with pytest.raises(AddressError):
            sub.inject_stuck_row(-1, value)
        assert not sub.stuck  # nothing was half-applied

    def test_inject_wrong_shape_raises(self, sub):
        with pytest.raises(AddressError):
            sub.inject_stuck_row(0, np.zeros(1, dtype=np.uint64))
        assert not sub.stuck

    def test_clear_out_of_range_raises(self, sub):
        with pytest.raises(AddressError):
            sub.clear_stuck_row(sub.geometry.storage_rows)
        with pytest.raises(AddressError):
            sub.clear_stuck_row(-1)

    def test_clear_unstuck_row_is_harmless(self, sub):
        sub.clear_stuck_row(0)  # no fault present: a no-op, not an error
        assert not sub.stuck

    def test_dcc_fault_out_of_range_raises(self, sub):
        with pytest.raises(AddressError):
            sub.inject_dcc_fault(sub.geometry.storage_rows)
        with pytest.raises(AddressError):
            sub.clear_dcc_fault(-1)


class TestPinning:
    def test_inject_pins_current_contents(self, dev, sub):
        value = pinned_value(sub)
        sub.inject_stuck_row(2, value)
        np.testing.assert_array_equal(sub.peek(2), value)
        assert sub.has_faults

    def test_command_path_write_cannot_change_stuck_row(self, dev, sub):
        value = pinned_value(sub)
        sub.inject_stuck_row(2, value)
        loc = RowLocation(BANK, SUB, 2)
        dev.write_row(loc, ~value)
        np.testing.assert_array_equal(dev.read_row(loc), value)

    def test_backdoor_poke_cannot_change_stuck_row(self, sub):
        value = pinned_value(sub)
        sub.inject_stuck_row(2, value)
        sub.poke(2, ~value)
        np.testing.assert_array_equal(sub.peek(2), value)
        sub.poke_batch([2], (~value)[None, :])
        np.testing.assert_array_equal(sub.peek(2), value)

    def test_copy_into_stuck_row_does_not_take(self, dev, sub):
        value = pinned_value(sub)
        src = RowLocation(BANK, SUB, 0)
        dst = RowLocation(BANK, SUB, 2)
        dev.write_row(src, ~value)
        sub.inject_stuck_row(2, value)
        dev.bbop_row(BulkOp.COPY, dst, src)
        np.testing.assert_array_equal(dev.read_row(dst), value)


class TestClearRollback:
    def test_clear_makes_row_writable_again(self, dev, sub):
        value = pinned_value(sub)
        sub.inject_stuck_row(2, value)
        sub.clear_stuck_row(2)
        assert not sub.has_faults
        loc = RowLocation(BANK, SUB, 2)
        dev.write_row(loc, ~value)
        np.testing.assert_array_equal(dev.read_row(loc), ~value)

    def test_clear_never_resurrects_pre_fault_data(self, dev, sub):
        """No rollback: the pinned image stays until the next write."""
        loc = RowLocation(BANK, SUB, 2)
        before = np.full(
            sub.geometry.words_per_row, np.uint64(0x1111111111111111)
        )
        dev.write_row(loc, before)
        value = pinned_value(sub)
        sub.inject_stuck_row(2, value)
        sub.clear_stuck_row(2)
        # Clearing lifts the fault but the cells keep the pinned image;
        # the pre-fault contents are gone for good.
        np.testing.assert_array_equal(dev.read_row(loc), value)

    def test_reinject_after_clear(self, dev, sub):
        value = pinned_value(sub)
        sub.inject_stuck_row(2, value)
        sub.clear_stuck_row(2)
        sub.inject_stuck_row(2, ~value)
        np.testing.assert_array_equal(sub.peek(2), ~value)
        assert sub.has_faults


class TestDccFaults:
    def test_inject_and_clear_dcc_fault(self, dev, sub):
        dcc_row = dev.amap.row_dcc(0)
        sub.inject_dcc_fault(dcc_row)
        assert sub.has_faults
        sub.clear_dcc_fault(dcc_row)
        assert not sub.has_faults

    def test_dcc_fault_breaks_negation(self, dev, sub):
        """With DCC0's n-wordline dead, NOT returns the input unflipped."""
        src = RowLocation(BANK, SUB, 0)
        dst = RowLocation(BANK, SUB, 2)
        pattern = np.full(
            sub.geometry.words_per_row, np.uint64(0x5A5A5A5A5A5A5A5A)
        )
        dev.write_row(src, pattern)
        dev.bbop_row(BulkOp.NOT, dst, src)
        np.testing.assert_array_equal(dev.read_row(dst), ~pattern)
        sub.inject_dcc_fault(dev.amap.row_dcc(0))
        dev.write_row(src, pattern)
        dev.bbop_row(BulkOp.NOT, dst, src)
        np.testing.assert_array_equal(dev.read_row(dst), pattern)
