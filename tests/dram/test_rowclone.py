"""RowClone FPM/PSM: in-DRAM copy (the substrate of Section 3.4)."""

import numpy as np
import pytest

from repro.dram.chip import DramChip, RowLocation
from repro.dram.geometry import small_test_geometry
from repro.dram.rowclone import (
    fpm_latency_ns,
    initialize_row,
    psm_latency_ns,
    rowclone_fpm,
    rowclone_psm,
)
from repro.dram.timing import ddr3_1600
from repro.errors import DramProtocolError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)


@pytest.fixture
def chip():
    return DramChip(GEO)


@pytest.fixture
def data(rng=np.random.default_rng(5)):
    return rng.integers(0, 2**63, size=GEO.subarray.words_per_row, dtype=np.uint64)


class TestFpm:
    def test_copies_within_subarray(self, chip, data):
        chip.poke_row(RowLocation(0, 0, 2), data)
        rowclone_fpm(chip, bank=0, subarray=0, src_address=2, dst_address=5)
        assert np.array_equal(chip.peek_row(RowLocation(0, 0, 5)), data)

    def test_source_preserved(self, chip, data):
        chip.poke_row(RowLocation(0, 0, 2), data)
        rowclone_fpm(chip, 0, 0, 2, 5)
        assert np.array_equal(chip.peek_row(RowLocation(0, 0, 2)), data)

    def test_identical_rows_rejected(self, chip):
        with pytest.raises(DramProtocolError):
            rowclone_fpm(chip, 0, 0, 3, 3)

    def test_command_sequence(self, chip, data):
        chip.poke_row(RowLocation(0, 0, 2), data)
        chip.trace.clear()
        rowclone_fpm(chip, 0, 0, 2, 5)
        acts, pres, rds, wrs = chip.trace.counts()
        # Exactly ACT, ACT, PRE -- no data over the channel.
        assert (acts, pres, rds, wrs) == (2, 1, 0, 0)

    def test_bank_left_precharged(self, chip, data):
        chip.poke_row(RowLocation(0, 0, 2), data)
        rowclone_fpm(chip, 0, 0, 2, 5)
        assert chip.bank(0).open_subarray is None

    def test_latency_is_80ns(self):
        assert fpm_latency_ns(ddr3_1600()) == pytest.approx(80.0)


class TestPsm:
    def test_copies_across_banks(self, chip, data):
        src = RowLocation(0, 1, 2)
        dst = RowLocation(1, 0, 4)
        chip.poke_row(src, data)
        rowclone_psm(chip, src, dst)
        assert np.array_equal(chip.peek_row(dst), data)

    def test_same_bank_rejected(self, chip):
        with pytest.raises(DramProtocolError):
            rowclone_psm(chip, RowLocation(0, 0, 1), RowLocation(0, 1, 1))

    def test_both_banks_precharged_after(self, chip, data):
        src, dst = RowLocation(0, 0, 1), RowLocation(1, 0, 1)
        chip.poke_row(src, data)
        rowclone_psm(chip, src, dst)
        assert chip.bank(0).open_subarray is None
        assert chip.bank(1).open_subarray is None

    def test_psm_slower_than_fpm(self):
        t = ddr3_1600()
        assert psm_latency_ns(t, 8192) > fpm_latency_ns(t)


class TestInitialize:
    def test_initialize_from_control_row(self, chip):
        ones = np.full(GEO.subarray.words_per_row, np.uint64(2**64 - 1))
        chip.poke_row(RowLocation(0, 0, 7), ones)
        initialize_row(chip, 0, 0, control_address=7, dst_address=3)
        assert np.array_equal(chip.peek_row(RowLocation(0, 0, 3)), ones)
