"""The paper's latency identities (Sections 3.4 and 5.3)."""

import pytest

from repro.dram.timing import (
    PRESETS,
    TimingParameters,
    ddr3_1333,
    ddr3_1600,
    ddr4_2400,
    preset,
)
from repro.errors import ConfigError


class TestPaperIdentities:
    def test_naive_aap_is_80ns_on_ddr3_1600(self):
        # Section 5.3: 2*tRAS + tRP = 80 ns for DDR3-1600 (8-8-8).
        assert ddr3_1600().aap_latency(split_decoder=False) == pytest.approx(80.0)

    def test_optimised_aap_is_49ns_on_ddr3_1600(self):
        # Section 5.3: tRAS + 4ns + tRP = 49 ns.
        assert ddr3_1600().aap_latency(split_decoder=True) == pytest.approx(49.0)

    def test_ap_is_45ns_on_ddr3_1600(self):
        assert ddr3_1600().ap_latency() == pytest.approx(45.0)

    def test_rowclone_fpm_is_80ns_unoptimised(self):
        # Section 3.4: "This operation takes only 80 ns".
        assert ddr3_1600().rowclone_fpm_latency() == pytest.approx(80.0)

    def test_rowclone_fpm_accelerated_by_split_decoder(self):
        assert ddr3_1600().rowclone_fpm_latency(split_decoder=True) == pytest.approx(
            49.0
        )

    def test_split_decoder_always_faster(self):
        for factory in PRESETS.values():
            t = factory()
            assert t.aap_latency(True) < t.aap_latency(False)


class TestParameters:
    def test_trc_is_ras_plus_rp(self):
        t = ddr3_1333()
        assert t.trc == pytest.approx(t.tRAS + t.tRP)

    def test_preset_lookup(self):
        assert preset("DDR3-1600").name == "DDR3-1600"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            preset("DDR9-9999")

    def test_all_presets_constructible(self):
        for name in PRESETS:
            assert preset(name).tRAS > 0

    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigError):
            TimingParameters(
                name="bad", tCK=1, tRCD=-1, tRAS=35, tRP=10, tCL=10, tBL=5
            )

    def test_negative_overlap_rejected(self):
        with pytest.raises(ConfigError):
            TimingParameters(
                name="bad",
                tCK=1,
                tRCD=10,
                tRAS=35,
                tRP=10,
                tCL=10,
                tBL=5,
                tAAP_OVERLAP=-1,
            )

    def test_activate_read_row_latency(self):
        t = ddr4_2400()
        latency = t.activate_read_row_latency(8192)
        assert latency > 8192 / t.io_gbps  # transfer plus command overhead
