"""Timing-constraint validation of command streams."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.commands import IssuedCommand, activate, precharge, read
from repro.dram.geometry import small_test_geometry
from repro.dram.timing import ddr3_1600
from repro.dram.timing_checker import (
    TimedCommand,
    TimingChecker,
    schedule_aap_stream,
)
from repro.errors import DramProtocolError

T = ddr3_1600()


def _tc(time, cmd, onto_open=False, wordlines=1):
    return TimedCommand(
        time,
        IssuedCommand(cmd, wordlines_raised=wordlines, onto_open_row=onto_open),
    )


class TestConstraints:
    def test_legal_access_sequence(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(T.tRCD, read(0, 0, 0)),
            _tc(T.tRAS, precharge(0)),
            _tc(T.tRAS + T.tRP, activate(0, 0, 2)),
        ]
        assert TimingChecker(T, strict=False).check(stream) == []

    def test_tras_violation(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(T.tRAS - 5.0, precharge(0)),
        ]
        with pytest.raises(DramProtocolError):
            TimingChecker(T).check(stream)

    def test_trcd_violation(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(T.tRCD - 1.0, read(0, 0, 0)),
        ]
        violations = TimingChecker(T, strict=False).check(stream)
        assert [v.constraint for v in violations] == ["tRCD"]

    def test_trp_violation(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(T.tRAS, precharge(0)),
            _tc(T.tRAS + 2.0, activate(0, 0, 2)),
        ]
        violations = TimingChecker(T, strict=False).check(stream)
        assert [v.constraint for v in violations] == ["tRP"]

    def test_read_without_open_row(self):
        violations = TimingChecker(T, strict=False).check(
            [_tc(0.0, read(0, 0, 0))]
        )
        assert violations[0].constraint == "open-row"

    def test_double_activate_without_aap_flag(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(10.0, activate(0, 0, 2)),  # not marked onto_open_row
        ]
        violations = TimingChecker(T, strict=False).check(stream)
        assert violations[0].constraint == "bank-open"

    def test_overlapped_activate_legal(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(T.tAAP_OVERLAP, activate(0, 0, 2), onto_open=True),
            _tc(T.tAAP_OVERLAP + T.tRAS, precharge(0)),
        ]
        assert TimingChecker(T, strict=False).check(stream) == []

    def test_overlapped_activate_too_early(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(1.0, activate(0, 0, 2), onto_open=True),
        ]
        violations = TimingChecker(T, strict=False).check(stream)
        assert violations[0].constraint == "tAAP"

    def test_banks_tracked_independently(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(1.0, activate(1, 0, 1)),  # other bank: fine
        ]
        assert TimingChecker(T, strict=False).check(stream) == []

    def test_burst_spacing(self):
        stream = [
            _tc(0.0, activate(0, 0, 1)),
            _tc(T.tRCD, read(0, 0, 0)),
            _tc(T.tRCD + 1.0, read(0, 0, 1)),  # < tBL apart
        ]
        violations = TimingChecker(T, strict=False).check(stream)
        assert violations[0].constraint == "tCCD"


class TestAmbitSchedules:
    """The controller's AAP schedules form legal command timelines."""

    @pytest.mark.parametrize(
        "op", [BulkOp.NOT, BulkOp.AND, BulkOp.NAND, BulkOp.XOR, BulkOp.XNOR]
    )
    def test_bulk_op_trace_times_cleanly(self, op):
        geo = small_test_geometry(rows=24, row_bytes=64, banks=1,
                                  subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo)
        rng = np.random.default_rng(0)
        words = geo.subarray.words_per_row
        device.write_row(RowLocation(0, 0, 0),
                         rng.integers(0, 2**63, size=words, dtype=np.uint64))
        device.write_row(RowLocation(0, 0, 1),
                         rng.integers(0, 2**63, size=words, dtype=np.uint64))
        device.reset_stats()
        device.bbop_row(
            op, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
            None if op.arity == 1 else RowLocation(0, 0, 1),
        )
        stream = schedule_aap_stream(list(device.chip.trace), device.timing)
        assert TimingChecker(device.timing, strict=False).check(stream) == []

    def test_schedule_duration_matches_latency_model(self):
        # The reconstructed timeline of an AND ends at ~4 AAP latencies.
        geo = small_test_geometry(rows=24, row_bytes=64, banks=1,
                                  subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo)
        device.write_row(RowLocation(0, 0, 0),
                         np.zeros(geo.subarray.words_per_row, dtype=np.uint64))
        device.write_row(RowLocation(0, 0, 1),
                         np.zeros(geo.subarray.words_per_row, dtype=np.uint64))
        device.reset_stats()
        device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2),
                        RowLocation(0, 0, 0), RowLocation(0, 0, 1))
        stream = schedule_aap_stream(list(device.chip.trace), device.timing)
        end = max(c.time_ns for c in stream) + device.timing.tRP
        assert end == pytest.approx(4 * device.timing.aap_latency(True))

    def test_naive_schedule_also_legal_but_longer(self):
        geo = small_test_geometry(rows=24, row_bytes=64, banks=1,
                                  subarrays_per_bank=1)
        device = AmbitDevice(geometry=geo, split_decoder=False)
        device.write_row(RowLocation(0, 0, 0),
                         np.zeros(geo.subarray.words_per_row, dtype=np.uint64))
        device.reset_stats()
        device.bbop_row(BulkOp.NOT, RowLocation(0, 0, 2), RowLocation(0, 0, 0))
        stream = schedule_aap_stream(
            list(device.chip.trace), device.timing, split_decoder=False
        )
        assert TimingChecker(device.timing, strict=False).check(stream) == []
        end = max(c.time_ns for c in stream) + device.timing.tRP
        assert end == pytest.approx(2 * device.timing.aap_latency(False))
