"""Bank and chip behaviour: open-row discipline, addressing, tracing."""

import numpy as np
import pytest

from repro.dram.chip import DramChip, RowLocation
from repro.dram.commands import Command, Opcode
from repro.dram.geometry import small_test_geometry
from repro.errors import AddressError, DramProtocolError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)


@pytest.fixture
def chip():
    return DramChip(GEO)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def _row(rng):
    return rng.integers(0, 2**63, size=GEO.subarray.words_per_row, dtype=np.uint64)


class TestBankDiscipline:
    def test_single_open_subarray(self, chip):
        chip.activate(0, 0, 1)
        with pytest.raises(DramProtocolError):
            chip.activate(0, 1, 1)  # other subarray, same bank

    def test_precharge_allows_switch(self, chip):
        chip.activate(0, 0, 1)
        chip.precharge(0)
        chip.activate(0, 1, 1)  # now legal

    def test_banks_are_independent(self, chip):
        chip.activate(0, 0, 1)
        chip.activate(1, 1, 2)  # different bank: fine
        assert chip.bank(0).open_subarray == 0
        assert chip.bank(1).open_subarray == 1

    def test_precharge_idempotent(self, chip):
        chip.precharge(0)
        chip.precharge(0)

    def test_read_requires_open_row(self, chip):
        with pytest.raises(DramProtocolError):
            chip.read_word(0, 0)

    def test_refresh_requires_precharged(self, chip):
        chip.activate(0, 0, 1)
        with pytest.raises(DramProtocolError):
            chip.refresh()

    def test_bank_index_checked(self, chip):
        with pytest.raises(AddressError):
            chip.bank(5)


class TestCommandExecution:
    def test_read_returns_data(self, chip, rng):
        data = _row(rng)
        chip.poke_row(RowLocation(0, 0, 3), data)
        chip.activate(0, 0, 3)
        assert chip.read_word(0, 2) == int(data[2])

    def test_write_word(self, chip):
        chip.activate(0, 0, 3)
        chip.write_word(0, 1, 777)
        chip.precharge(0)
        assert int(chip.peek_row(RowLocation(0, 0, 3))[1]) == 777

    def test_activate_requires_row(self, chip):
        with pytest.raises(DramProtocolError):
            chip.execute(Command(Opcode.ACTIVATE, bank=0))

    def test_trace_records_commands(self, chip):
        chip.activate(0, 0, 1)
        chip.precharge(0)
        acts, pres, _, _ = chip.trace.counts()
        assert (acts, pres) == (1, 1)

    def test_trace_records_reads_writes(self, chip, rng):
        chip.poke_row(RowLocation(0, 0, 0), _row(rng))
        chip.activate(0, 0, 0)
        chip.read_word(0, 0)
        chip.write_word(0, 0, 1)
        _, _, rds, wrs = chip.trace.counts()
        assert (rds, wrs) == (1, 1)

    def test_refresh_restores_all(self, chip):
        chip.clock_ns = 5e6
        chip.refresh()
        sub = chip.bank(1).subarray(1)
        assert (sub.last_restore_ns == 5e6).all()


class TestGlobalAddressing:
    def test_data_rows_total(self, chip):
        per_sub = GEO.subarray.data_rows
        assert chip.data_rows == 2 * 2 * per_sub

    def test_roundtrip(self, chip):
        for r in range(chip.data_rows):
            loc = chip.locate_data_row(r)
            assert chip.global_data_row(loc) == r

    def test_contiguity_within_subarray(self, chip):
        # Section 5.1: software sees contiguous D-group addresses.
        loc0 = chip.locate_data_row(0)
        loc1 = chip.locate_data_row(1)
        assert (loc0.bank, loc0.subarray) == (loc1.bank, loc1.subarray)
        assert loc1.address == loc0.address + 1

    def test_out_of_range(self, chip):
        with pytest.raises(AddressError):
            chip.locate_data_row(chip.data_rows)

    def test_global_of_bad_local(self, chip):
        with pytest.raises(AddressError):
            chip.global_data_row(RowLocation(0, 0, GEO.subarray.data_rows))

    def test_peek_poke_global(self, chip, rng):
        data = _row(rng)
        chip.poke_global(5, data)
        assert np.array_equal(chip.peek_global(5), data)


class TestWordlineTracing:
    def test_multi_wordline_activates_recorded(self):
        from repro.core.addressing import AmbitAddressMap

        amap = AmbitAddressMap(GEO.subarray)
        chip = DramChip(GEO, decoder_factory=lambda: amap.build_decoder())
        chip.activate(0, 0, amap.b(12))  # T0,T1,T2 TRA
        entry = chip.trace.entries[-1]
        assert entry.wordlines_raised == 3
        assert entry.onto_open_row is False

    def test_weighted_activates(self):
        from repro.core.addressing import AmbitAddressMap

        amap = AmbitAddressMap(GEO.subarray)
        chip = DramChip(GEO, decoder_factory=lambda: amap.build_decoder())
        chip.activate(0, 0, amap.b(12))
        # 1 + 0.22 * 2 extra wordlines
        assert chip.trace.weighted_activates() == pytest.approx(1.44)
