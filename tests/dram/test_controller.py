"""FR-FCFS memory controller scheduling."""

import pytest

from repro.dram.controller import FrFcfsScheduler, MemRequest, RequestType
from repro.dram.timing import ddr4_2400
from repro.errors import SimulationError


def _req(bank, row, arrival=0.0, rtype=RequestType.READ):
    return MemRequest(rtype=rtype, bank=bank, row=row, arrival_ns=arrival)


@pytest.fixture
def sched():
    return FrFcfsScheduler(timing=ddr4_2400(), banks=4)


class TestScheduling:
    def test_empty_queue(self, sched):
        makespan, done = sched.run()
        assert makespan == 0.0 and done == []

    def test_single_request(self, sched):
        t = sched.timing
        sched.enqueue(_req(0, 1))
        makespan, done = sched.run()
        assert makespan == pytest.approx(t.tRCD + t.tCL + t.tBL)

    def test_row_hit_faster_than_miss(self, sched):
        t = sched.timing
        sched.enqueue(_req(0, 1))
        sched.enqueue(_req(0, 1))
        makespan, done = sched.run()
        hit_latency = done[1].finish_ns - done[0].finish_ns
        assert hit_latency == pytest.approx(t.tCL + t.tBL)

    def test_conflict_pays_precharge(self, sched):
        sched.enqueue(_req(0, 1))
        sched.enqueue(_req(0, 2))
        _, done = sched.run()
        t = sched.timing
        conflict_latency = done[1].finish_ns - done[1].start_ns
        assert conflict_latency == pytest.approx(t.tRP + t.tRCD + t.tCL + t.tBL)

    def test_fr_prioritises_row_hits(self, sched):
        # Older request to a different row loses to a younger row hit.
        sched.enqueue(_req(0, 1, arrival=0.0))
        sched.enqueue(_req(0, 2, arrival=1.0))
        sched.enqueue(_req(0, 1, arrival=2.0))
        _, done = sched.run()
        served_rows = [r.row for r in done]
        assert served_rows == [1, 1, 2]

    def test_banks_overlap(self):
        t = ddr4_2400()
        serial = FrFcfsScheduler(timing=t, banks=4)
        for i in range(4):
            serial.enqueue(_req(0, i))  # all conflicts on one bank
        span_serial, _ = serial.run()

        parallel = FrFcfsScheduler(timing=t, banks=4)
        for i in range(4):
            parallel.enqueue(_req(i, 0))  # one per bank
        span_parallel, _ = parallel.run()
        assert span_parallel < span_serial

    def test_bus_serialises_bursts(self):
        t = ddr4_2400()
        sched = FrFcfsScheduler(timing=t, banks=4)
        for i in range(4):
            sched.enqueue(_req(i, 0))
        makespan, done = sched.run()
        finishes = sorted(r.finish_ns for r in done)
        for a, b in zip(finishes, finishes[1:]):
            assert b - a >= t.tBL - 1e-9

    def test_arrival_times_respected(self, sched):
        sched.enqueue(_req(0, 1, arrival=500.0))
        _, done = sched.run()
        assert done[0].start_ns >= 500.0

    def test_bad_bank_rejected(self, sched):
        with pytest.raises(SimulationError):
            sched.enqueue(_req(9, 0))

    def test_zero_banks_rejected(self):
        with pytest.raises(SimulationError):
            FrFcfsScheduler(timing=ddr4_2400(), banks=0)

    def test_row_hit_rate_diagnostic(self, sched):
        sched.enqueue(_req(0, 1))
        sched.enqueue(_req(0, 1))
        sched.enqueue(_req(0, 2))
        _, done = sched.run()
        assert sched.row_hit_rate(done) == pytest.approx(1 / 3)
