"""Command records and trace accounting."""

import pytest

from repro.dram.commands import (
    Command,
    CommandTrace,
    IssuedCommand,
    Opcode,
    activate,
    precharge,
    read,
    write,
)


class TestConstructors:
    def test_activate(self):
        cmd = activate(1, 2, 3)
        assert cmd.opcode is Opcode.ACTIVATE
        assert (cmd.bank, cmd.subarray, cmd.row) == (1, 2, 3)

    def test_precharge(self):
        cmd = precharge(1)
        assert cmd.opcode is Opcode.PRECHARGE and cmd.bank == 1

    def test_read_write(self):
        assert read(0, 0, 7).column == 7
        assert write(0, 0, 9).opcode is Opcode.WRITE

    def test_commands_are_frozen(self):
        cmd = activate(0, 0, 0)
        with pytest.raises(AttributeError):
            cmd.bank = 1

    def test_str_forms(self):
        assert "ACT" in str(activate(0, 0, 5))
        assert "PRECHARGE" in str(precharge(0))
        assert "col=3" in str(read(0, 0, 3))


class TestTrace:
    def test_counts(self):
        trace = CommandTrace()
        trace.append(IssuedCommand(activate(0, 0, 1)))
        trace.append(IssuedCommand(activate(0, 0, 2)))
        trace.append(IssuedCommand(precharge(0)))
        trace.append(IssuedCommand(read(0, 0, 0)))
        assert trace.counts() == (2, 1, 1, 0)
        assert len(trace) == 4

    def test_weighted_activates(self):
        trace = CommandTrace()
        trace.append(IssuedCommand(activate(0, 0, 1), wordlines_raised=1))
        trace.append(IssuedCommand(activate(0, 0, 2), wordlines_raised=3))
        # 1 + (1 + 0.22*2) = 2.44
        assert trace.weighted_activates() == pytest.approx(2.44)

    def test_weighted_custom_factor(self):
        trace = CommandTrace()
        trace.append(IssuedCommand(activate(0, 0, 1), wordlines_raised=2))
        assert trace.weighted_activates(0.5) == pytest.approx(1.5)

    def test_clear(self):
        trace = CommandTrace()
        trace.append(IssuedCommand(precharge(0)))
        trace.clear()
        assert len(trace) == 0

    def test_iteration_and_extend(self):
        trace = CommandTrace()
        items = [IssuedCommand(precharge(0)), IssuedCommand(precharge(1))]
        trace.extend(items)
        assert [e.command.bank for e in trace] == [0, 1]

    def test_onto_open_row_flag_default(self):
        issued = IssuedCommand(activate(0, 0, 1))
        assert issued.onto_open_row is False
