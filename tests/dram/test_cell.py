"""Row decoders and wordline records."""

import pytest

from repro.dram.cell import DirectRowDecoder, MappingRowDecoder, Wordline
from repro.errors import AddressError


class TestDirectDecoder:
    def test_identity_mapping(self):
        dec = DirectRowDecoder(8)
        assert dec.decode(5) == (Wordline(5),)

    def test_address_space(self):
        assert DirectRowDecoder(8).address_space() == 8

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            DirectRowDecoder(8).decode(8)

    def test_negative_rejected(self):
        with pytest.raises(AddressError):
            DirectRowDecoder(8).decode(-1)

    def test_zero_rows_rejected(self):
        with pytest.raises(AddressError):
            DirectRowDecoder(0)


class TestMappingDecoder:
    def test_fanout(self):
        dec = MappingRowDecoder({0: (Wordline(1), Wordline(2))})
        assert dec.decode(0) == (Wordline(1), Wordline(2))

    def test_unmapped_address(self):
        dec = MappingRowDecoder({0: (Wordline(0),)})
        with pytest.raises(AddressError):
            dec.decode(1)

    def test_empty_table_rejected(self):
        with pytest.raises(AddressError):
            MappingRowDecoder({})

    def test_empty_fanout_rejected(self):
        with pytest.raises(AddressError):
            MappingRowDecoder({0: ()})

    def test_address_space_is_max_plus_one(self):
        dec = MappingRowDecoder({0: (Wordline(0),), 7: (Wordline(1),)})
        assert dec.address_space() == 8


class TestWordline:
    def test_equality(self):
        assert Wordline(3) == Wordline(3, negated=False)
        assert Wordline(3) != Wordline(3, negated=True)

    def test_hashable(self):
        assert len({Wordline(1), Wordline(1), Wordline(2)}) == 2
