"""Subarray activation semantics: the physics Ambit is built on."""

import numpy as np
import pytest

from repro.dram.cell import MappingRowDecoder, Wordline
from repro.dram.geometry import SubarrayGeometry
from repro.dram.subarray import Subarray
from repro.errors import AddressError, DramProtocolError

GEO = SubarrayGeometry(rows=24, row_bytes=64)
WORDS = GEO.words_per_row


def _row(rng):
    return rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)


@pytest.fixture
def sub():
    return Subarray(GEO)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSingleActivation:
    def test_activation_latches_row(self, sub, rng):
        data = _row(rng)
        sub.poke(3, data)
        sub.activate(3)
        assert np.array_equal(sub.read_open_row(), data)

    def test_activation_restores_cell(self, sub, rng):
        # Figure 3 state 5: the capacitor is fully restored.
        data = _row(rng)
        sub.poke(3, data)
        sub.activate(3, now_ns=100.0)
        assert sub.last_restore_ns[3] == 100.0

    def test_fresh_activation_returns_flags(self, sub):
        raised, onto_open = sub.activate(0)
        assert raised == 1 and onto_open is False

    def test_second_activation_copies_latch(self, sub, rng):
        # RowClone-FPM: ACTIVATE src; ACTIVATE dst copies src -> dst.
        data = _row(rng)
        sub.poke(1, data)
        sub.activate(1)
        raised, onto_open = sub.activate(2)
        assert onto_open is True
        sub.precharge()
        assert np.array_equal(sub.peek(2), data)

    def test_precharge_disables_amps(self, sub):
        sub.activate(0)
        sub.precharge()
        with pytest.raises(DramProtocolError):
            sub.read_open_row()

    def test_read_requires_activation(self, sub):
        with pytest.raises(DramProtocolError):
            sub.read_word(0)

    def test_out_of_range_address(self, sub):
        with pytest.raises(AddressError):
            sub.activate(GEO.storage_rows)


class TestReadsAndWrites:
    def test_word_read(self, sub, rng):
        data = _row(rng)
        sub.poke(0, data)
        sub.activate(0)
        assert sub.read_word(3) == int(data[3])

    def test_word_write_updates_cell(self, sub, rng):
        sub.poke(0, _row(rng))
        sub.activate(0)
        sub.write_word(2, 0xDEADBEEF)
        sub.precharge()
        assert int(sub.peek(0)[2]) == 0xDEADBEEF

    def test_write_column_out_of_range(self, sub):
        sub.activate(0)
        with pytest.raises(AddressError):
            sub.write_word(WORDS, 0)

    def test_row_write_shape_checked(self, sub):
        sub.activate(0)
        with pytest.raises(DramProtocolError):
            sub.write_open_row(np.zeros(WORDS + 1, dtype=np.uint64))

    def test_write_reaches_all_raised_rows(self, sub, rng):
        # After an AAP-style double activation, a WRITE drives both rows.
        sub.poke(0, _row(rng))
        sub.activate(0)
        sub.activate(1)
        sub.write_word(0, 42)
        sub.precharge()
        assert int(sub.peek(0)[0]) == 42
        assert int(sub.peek(1)[0]) == 42


class TestTripleRowActivation:
    @pytest.fixture
    def tra_sub(self):
        table = {i: (Wordline(i),) for i in range(GEO.storage_rows)}
        table[100] = (Wordline(0), Wordline(1), Wordline(2))
        return Subarray(GEO, decoder=MappingRowDecoder(table))

    def test_tra_computes_majority(self, tra_sub, rng):
        a, b, c = (_row(rng) for _ in range(3))
        tra_sub.poke(0, a)
        tra_sub.poke(1, b)
        tra_sub.poke(2, c)
        tra_sub.activate(100)
        expected = (a & b) | (b & c) | (c & a)
        assert np.array_equal(tra_sub.read_open_row(), expected)

    def test_tra_overwrites_all_three_cells(self, tra_sub, rng):
        # Issue 3 of Section 3.2: TRA destroys its source values.
        a, b, c = (_row(rng) for _ in range(3))
        for i, v in enumerate((a, b, c)):
            tra_sub.poke(i, v)
        tra_sub.activate(100)
        tra_sub.precharge()
        expected = (a & b) | (b & c) | (c & a)
        for i in range(3):
            assert np.array_equal(tra_sub.peek(i), expected)

    def test_tra_raises_three_wordlines(self, tra_sub):
        raised, onto_open = tra_sub.activate(100)
        assert raised == 3 and onto_open is False

    def test_even_cell_count_unresolvable(self):
        table = {0: (Wordline(0), Wordline(1))}
        sub = Subarray(GEO, decoder=MappingRowDecoder(table))
        with pytest.raises(DramProtocolError):
            sub.activate(0)


class TestDualContactSemantics:
    @pytest.fixture
    def dcc_sub(self):
        table = {i: (Wordline(i),) for i in range(GEO.storage_rows)}
        table[50] = (Wordline(5, negated=True),)  # n-wordline of "DCC" row 5
        table[51] = (Wordline(5, negated=False),)  # its d-wordline
        return Subarray(GEO, decoder=MappingRowDecoder(table))

    def test_n_wordline_stores_negated_latch(self, dcc_sub, rng):
        # Figure 6: activate source, then the n-wordline -> DCC = !source.
        data = _row(rng)
        dcc_sub.poke(0, data)
        dcc_sub.activate(0)
        dcc_sub.activate(50)
        dcc_sub.precharge()
        assert np.array_equal(dcc_sub.peek(5), ~data)

    def test_n_wordline_contributes_negated_value(self, dcc_sub, rng):
        # Reading through the n-wordline senses the complement.
        data = _row(rng)
        dcc_sub.poke(5, data)
        dcc_sub.activate(50)
        assert np.array_equal(dcc_sub.read_open_row(), ~data)

    def test_d_wordline_roundtrip(self, dcc_sub, rng):
        data = _row(rng)
        dcc_sub.poke(5, data)
        dcc_sub.activate(51)
        assert np.array_equal(dcc_sub.read_open_row(), data)

    def test_double_negation_is_identity(self, dcc_sub, rng):
        # ACT n-wordline (sense !DCC), ACT a row -> row = !DCC; doing it
        # twice restores the original value.
        data = _row(rng)
        dcc_sub.poke(5, data)
        dcc_sub.activate(50)
        dcc_sub.activate(1)
        dcc_sub.precharge()
        assert np.array_equal(dcc_sub.peek(1), ~data)


class TestRetention:
    def test_stale_rows_reported(self, sub, rng):
        sub.poke(0, _row(rng), now_ns=0.0)
        stale = sub.stale_rows(now_ns=65e6, retention_ns=64e6)
        assert 0 in stale

    def test_activation_refreshes(self, sub, rng):
        sub.poke(0, _row(rng), now_ns=0.0)
        sub.activate(0, now_ns=63e6)
        sub.precharge()
        assert 0 not in sub.stale_rows(now_ns=65e6, retention_ns=64e6)

    def test_refresh_all(self, sub):
        sub.refresh_all(now_ns=1e6)
        assert sub.stale_rows(now_ns=1e6 + 1, retention_ns=64e6).size == 0

    def test_age(self, sub):
        sub.poke(4, np.zeros(WORDS, dtype=np.uint64), now_ns=10.0)
        assert sub.age_ns(4, now_ns=25.0) == pytest.approx(15.0)
