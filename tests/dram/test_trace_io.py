"""Command-trace serialisation and replay."""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import DramChip, RowLocation
from repro.dram.geometry import small_test_geometry
from repro.dram.trace_io import (
    TraceEntry,
    dump_trace,
    parse_trace,
    replay_trace,
    roundtrip,
)
from repro.errors import DramProtocolError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=2, subarrays_per_bank=2)


class TestFormat:
    def test_parse_basic_lines(self):
        text = """
        # warm-up
        ACT 0 1 5
        RD 0 3
        WR 0 4 0xdeadbeef
        PRE 0
        REF
        """
        entries = parse_trace(text)
        mnemonics = [e.format().split()[0] for e in entries]
        assert mnemonics == ["ACT", "RD", "WR", "PRE", "REF"]
        assert entries[2].write_value == 0xDEADBEEF

    def test_format_parse_roundtrip(self):
        text = "ACT 1 0 7\nWR 1 2 0x2a\nPRE 1"
        entries = parse_trace(text)
        assert parse_trace("\n".join(e.format() for e in entries)) == entries

    def test_unknown_mnemonic(self):
        with pytest.raises(DramProtocolError):
            parse_trace("NOP 0")

    def test_malformed_operands(self):
        with pytest.raises(DramProtocolError):
            parse_trace("ACT 0 zero 1")
        with pytest.raises(DramProtocolError):
            parse_trace("RD 0")

    def test_comments_and_blanks_ignored(self):
        assert parse_trace("\n\n# nothing\n") == []


class TestReplay:
    def test_replay_reads_data(self):
        chip = DramChip(GEO)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2**63, size=GEO.subarray.words_per_row,
                            dtype=np.uint64)
        chip.poke_row(RowLocation(0, 0, 3), data)
        reads = replay_trace(chip, parse_trace("ACT 0 0 3\nRD 0 2\nPRE 0"))
        assert reads == [int(data[2])]

    def test_replay_writes_data(self):
        chip = DramChip(GEO)
        replay_trace(chip, parse_trace("ACT 0 0 3\nWR 0 1 0x77\nPRE 0"))
        assert int(chip.peek_row(RowLocation(0, 0, 3))[1]) == 0x77

    def test_illegal_trace_raises(self):
        chip = DramChip(GEO)
        with pytest.raises(DramProtocolError):
            replay_trace(chip, parse_trace("RD 0 0"))  # no open row


class TestAmbitReplay:
    def test_ambit_dump_replays_bit_exactly(self):
        """Dump the command stream of a bulk XOR and replay it onto a
        fresh Ambit device with the same initial memory image: the
        replayed device computes the identical result."""
        rng = np.random.default_rng(1)
        words = GEO.subarray.words_per_row
        a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        b = rng.integers(0, 2**63, size=words, dtype=np.uint64)

        original = AmbitDevice(geometry=GEO)
        original.write_row(RowLocation(0, 0, 0), a)
        original.write_row(RowLocation(0, 0, 1), b)
        original.reset_stats()
        original.bbop_row(BulkOp.XOR, RowLocation(0, 0, 2),
                          RowLocation(0, 0, 0), RowLocation(0, 0, 1))
        trace_text = dump_trace(original.chip.trace)

        replayed = AmbitDevice(geometry=GEO)
        replayed.write_row(RowLocation(0, 0, 0), a)
        replayed.write_row(RowLocation(0, 0, 1), b)
        replay_trace(replayed.chip, parse_trace(trace_text))
        assert np.array_equal(
            replayed.read_row(RowLocation(0, 0, 2)), a ^ b
        )

    def test_roundtrip_helper(self):
        device = AmbitDevice(geometry=GEO)
        device.write_row(RowLocation(0, 0, 0),
                         np.zeros(GEO.subarray.words_per_row, dtype=np.uint64))
        device.reset_stats()
        device.bbop_row(BulkOp.NOT, RowLocation(0, 0, 2), RowLocation(0, 0, 0))
        entries = roundtrip(device.chip)
        # not = 2 AAPs = 4 ACTs + 2 PREs.
        acts = sum(1 for e in entries if e.format().startswith("ACT"))
        pres = sum(1 for e in entries if e.format().startswith("PRE"))
        assert (acts, pres) == (4, 2)
