"""Refresh scheduling and the Ambit freshness invariant (issue 4)."""

import pytest

from repro.core.addressing import AmbitAddressMap
from repro.core.controller import AmbitController
from repro.core.microprograms import BulkOp
from repro.dram.chip import DramChip
from repro.dram.geometry import small_test_geometry
from repro.dram.refresh import RETENTION_NS, RefreshScheduler, tra_inputs_fresh
from repro.dram.timing import ddr3_1600
from repro.errors import ConfigError

GEO = small_test_geometry(rows=24, row_bytes=64, banks=1, subarrays_per_bank=1)


@pytest.fixture
def chip():
    return DramChip(GEO)


class TestScheduler:
    def test_sweeps_issued(self, chip):
        sched = RefreshScheduler(chip, interval_ns=1000.0)
        assert sched.advance_to(3500.0) == 3

    def test_no_sweep_before_due(self, chip):
        sched = RefreshScheduler(chip, interval_ns=1000.0)
        assert sched.advance_to(999.0) == 0

    def test_clock_advanced(self, chip):
        sched = RefreshScheduler(chip, interval_ns=1000.0)
        sched.advance_to(2500.0)
        assert chip.clock_ns == 2500.0

    def test_rows_restored_at_sweep_time(self, chip):
        sched = RefreshScheduler(chip, interval_ns=1000.0)
        sched.advance_to(1500.0)
        sub = chip.bank(0).subarray(0)
        assert (sub.last_restore_ns == 1000.0).all()

    def test_bad_interval(self, chip):
        with pytest.raises(ConfigError):
            RefreshScheduler(chip, interval_ns=0.0)


class TestAmbitFreshnessInvariant:
    def test_copies_before_tra_refresh_designated_rows(self):
        """Section 3.3: the operand copies performed immediately before a
        TRA leave the designated rows effectively fully refreshed, even
        if the rest of the device is near the retention limit."""
        from repro.core.device import AmbitDevice

        device = AmbitDevice(geometry=GEO, timing=ddr3_1600())
        amap = AmbitAddressMap(GEO.subarray)
        # Let the whole device age to just under the retention window.
        device.chip.clock_ns = RETENTION_NS * 0.99
        device.controller.bbop(BulkOp.AND, 0, 0, dk=2, di=0, dj=1)
        designated = [amap.row_t(0), amap.row_t(1), amap.row_t(2)]
        assert tra_inputs_fresh(device.chip, 0, 0, designated)
        # The designated rows were restored within microseconds of "now",
        # i.e. 5-6 orders of magnitude inside the 64 ms window.
        sub = device.chip.bank(0).subarray(0)
        now = device.chip.clock_ns
        for row in designated:
            assert sub.age_ns(row, now) < 1e4  # < 10 us
