"""Wire protocol: framing, bit packing, payload validation."""

import numpy as np
import pytest

from repro.serve.protocol import (
    E_PROTOCOL,
    E_SHAPE,
    ServeError,
    bytes_to_rows,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    pack_bits,
    payload_bytes,
    rows_to_hex,
    unpack_bits,
)


def test_frame_round_trip():
    frame = {"cmd": "op", "id": 17, "op": "xor", "dst": "a"}
    line = encode_frame(frame)
    assert line.endswith(b"\n")
    assert decode_frame(line) == frame


@pytest.mark.parametrize("junk", [b"not json\n", b"[1, 2]\n", b"42\n"])
def test_decode_rejects_junk(junk):
    with pytest.raises(ServeError) as excinfo:
        decode_frame(junk)
    assert excinfo.value.code == E_PROTOCOL


def test_response_shapes():
    ok = ok_response(7, pong=True)
    assert ok == {"ok": True, "id": 7, "pong": True}
    err = error_response(None, "quota", "clipped")
    assert err == {"ok": False, "error": "quota", "message": "clipped"}
    assert "id" not in err


@pytest.mark.parametrize("bits", [1, 7, 8, 9, 63, 64, 65, 1000])
def test_pack_unpack_round_trip(bits):
    rng = np.random.default_rng(bits)
    vector = rng.integers(0, 2, size=bits).astype(bool)
    data = pack_bits(vector)
    assert len(data) == 2 * ((bits + 7) // 8)  # hex of ceil(bits/8) bytes
    assert np.array_equal(unpack_bits(data, bits), vector)


def test_payload_bytes_validation():
    with pytest.raises(ServeError) as excinfo:
        payload_bytes(12345, 16)
    assert excinfo.value.code == E_PROTOCOL
    with pytest.raises(ServeError) as excinfo:
        payload_bytes("zz", 8)
    assert excinfo.value.code == E_PROTOCOL
    with pytest.raises(ServeError) as excinfo:
        payload_bytes("aabb", 8)  # 2 bytes for an 8-bit vector
    assert excinfo.value.code == E_SHAPE
    assert payload_bytes("ab", 8) == b"\xab"


def test_rows_round_trip_with_padding():
    """Payload -> row images -> payload survives partial last rows."""
    bits = 900  # 113 bytes over two 64-byte rows: last row half-used
    rng = np.random.default_rng(0)
    vector = rng.integers(0, 2, size=bits).astype(bool)
    raw = bytes.fromhex(pack_bits(vector))
    images = bytes_to_rows(raw, nrows=2, row_bytes=64)
    assert all(img.dtype == np.uint64 and img.size == 8 for img in images)
    assert rows_to_hex(images, bits) == raw.hex()
    assert np.array_equal(unpack_bits(rows_to_hex(images, bits), bits), vector)
