"""End-to-end request spans: socket to silicon, under injected faults.

These tests boot a real :class:`BulkBitwiseServer` (same harness as
``test_server.py``), push fault-injected traffic through the NDJSON
protocol, and then interrogate the ``spans`` command: every op must
yield a span tree whose stage breakdown tiles the request's wall
clock, recovery attempts must appear as child spans of the device
span, and a histogram exemplar must resolve back to a stored trace.
Results stay bit-exact throughout -- tracing observes, it never
perturbs.
"""

import json

import numpy as np

from repro.obs.spans import STAGES, validate_trace
from repro.serve.protocol import (
    E_NO_TRACE,
    E_NO_VECTOR,
    E_PROTOCOL,
)
from tests.serve.test_server import (
    OP_MODELS,
    TENANT,
    Client,
    make_vectors,
    read_vector,
    run,
    small_config,
)


async def run_ops(client, models, ops=("and", "xor", "maj", "not")):
    """Run a few ops against vector d, updating the numpy model."""
    for op_name in ops:
        arity, model = OP_MODELS[op_name]
        srcs = ("a", "b", "c")[:arity]
        fields = {f"src{i + 1}": name for i, name in enumerate(srcs)}
        response = await client.rpc(
            "op", tenant=TENANT, op=op_name, dst="d", **fields
        )
        assert response["ok"], (op_name, response)
        models["d"] = model(*(models[s] for s in srcs))
    return models


def test_span_trees_tile_wall_clock_under_faults():
    """The acceptance bar: fault-injected traffic -> well-formed span
    trees whose stages sum to the wall latency, bit-exact results."""
    async def scenario(server):
        async with Client(server.port) as client:
            models = await make_vectors(client, ("a", "b", "c", "d"))
            for _ in range(6):
                models = await run_ops(client, models)
            assert np.array_equal(
                await read_vector(client, "d"), models["d"]
            )

            response = await client.rpc("spans", tenant=TENANT, op=None)
            assert response["ok"], response
            traces = response["spans"]
            # The spans request's own trace is stored only after its
            # response hits the socket, so the ring can be ahead.
            assert response["recorded"] <= len(server.spans)
            op_traces = [t for t in traces if t["cmd"] == "op"]
            assert len(op_traces) >= 24
            for trace in traces:
                assert validate_trace(trace) == [], trace["trace"]
                # The ISSUE asks for "within 5% of wall"; the design
                # gives exact tiling, so pin the stronger invariant.
                assert sum(trace["stages"].values()) == trace["wall_ns"]
                assert set(trace["stages"]) == set(STAGES)
            for trace in op_traces:
                names = [s["name"] for s in trace["spans"]]
                assert names[0] == "request:op"
                assert "device" in names and "queue" in names
                assert trace["stages"]["device"] > 0

    # fault_rate high enough that the plan fires during ~24 waves.
    run(scenario, small_config(fault_rate=0.2, seed=7))


def test_recovery_attempts_become_child_spans():
    async def scenario(server):
        async with Client(server.port) as client:
            models = await make_vectors(client, ("a", "b", "c", "d"))
            for round_index in range(10):
                models = await run_ops(client, models)
            # Bit-exactness: recovery repaired every injected fault.
            assert np.array_equal(
                await read_vector(client, "d"), models["d"]
            )
            assert len(server.session.attempts) > 0, (
                "fault plan never fired; raise fault_rate or rounds"
            )

            response = await client.rpc("spans")
            recovery_spans = []
            for trace in response["spans"]:
                spans = {s["span"]: s for s in trace["spans"]}
                for span in trace["spans"]:
                    if span["name"].startswith("recovery:"):
                        recovery_spans.append(span)
                        parent = spans[span["parent"]]
                        assert parent["name"] == "device"
                        action = span["name"].split(":", 1)[1]
                        assert action in ("retry", "remap", "dcc_reroute")
                        assert isinstance(span["attrs"]["ok"], bool)
                        assert trace["stages"]["recovery"] > 0
            assert recovery_spans, "no recovery child spans recorded"

    # Seed picked so the plan injects recoverable faults only: the
    # bit-exact read above is then a real claim about recovery.
    run(scenario, small_config(fault_rate=0.2, seed=2))


def test_detail_timing_is_opt_in_and_consistent():
    async def scenario(server):
        async with Client(server.port) as client:
            await make_vectors(client, ("a", "b", "d"))
            plain = await client.rpc(
                "op", tenant=TENANT, op="and", dst="d", src1="a", src2="b"
            )
            assert "timing" not in plain

            timed = await client.rpc(
                "op", tenant=TENANT, op="or", dst="d", src1="a", src2="b",
                detail="timing",
            )
            assert timed["ok"], timed
            timing = timed["timing"]
            stages = timing["stages_ns"]
            assert set(stages) == set(STAGES)
            assert stages["device"] > 0

            # The inline trace id resolves to the stored (authoritative)
            # trace, which additionally covers the serialize tail.
            fetched = await client.rpc("spans", trace=timing["trace"])
            assert fetched["ok"], fetched
            (trace,) = fetched["spans"]
            assert trace["trace"] == timing["trace"]
            assert trace["cmd"] == "op" and trace["op"] == "or"
            assert trace["wall_ns"] >= sum(stages.values())
            assert validate_trace(trace) == []

    run(scenario)


def test_spans_filters_and_errors():
    async def scenario(server):
        async with Client(server.port) as client:
            await make_vectors(client, ("a", "b", "d"))
            await client.rpc(
                "op", tenant=TENANT, op="and", dst="d", src1="a", src2="b"
            )

            by_tenant = await client.rpc("spans", tenant=TENANT)
            assert all(t["tenant"] == TENANT for t in by_tenant["spans"])
            assert by_tenant["spans"], "tenant filter dropped everything"

            by_op = await client.rpc("spans", op="and")
            assert [t["op"] for t in by_op["spans"]] == ["and"]

            slowest = await client.rpc("spans", slowest=2)
            walls = [t["wall_ns"] for t in slowest["spans"]]
            assert len(walls) <= 2 and walls == sorted(walls, reverse=True)

            await client.expect_error(E_NO_TRACE, "spans", trace="t-nope")
            await client.expect_error(E_PROTOCOL, "spans", slowest=0)
            await client.expect_error(E_PROTOCOL, "spans", slowest=True)
            await client.expect_error(E_PROTOCOL, "spans", trace=17)

    run(scenario)


def test_no_trace_mode_disables_spans_but_not_service():
    async def scenario(server):
        assert server.spans is None and server.recorder is None
        async with Client(server.port) as client:
            models = await make_vectors(client, ("a", "b", "d"))
            response = await client.rpc(
                "op", tenant=TENANT, op="xor", dst="d", src1="a", src2="b",
                detail="timing",
            )
            assert response["ok"]
            assert "timing" not in response       # nothing to report
            assert np.array_equal(
                await read_vector(client, "d"),
                models["a"] ^ models["b"],
            )
            await client.expect_error(E_PROTOCOL, "spans")

    run(scenario, small_config(trace=False))


def test_typed_errors_feed_the_error_counter():
    async def scenario(server):
        async with Client(server.port) as client:
            await client.expect_error(
                E_NO_VECTOR, "read", tenant=TENANT, name="ghost"
            )
            await client.expect_error(
                E_NO_VECTOR, "read", tenant=TENANT, name="ghost"
            )
            family = server.metrics.get("ambit_serve_errors_total")
            assert family.children[(E_NO_VECTOR,)].value == 2
            # Error requests still land in the span ring, status-coded.
            response = await client.rpc("spans")
            statuses = {t["status"] for t in response["spans"]}
            assert E_NO_VECTOR in statuses

    run(scenario)


def test_latency_exemplar_resolves_to_stored_trace():
    async def scenario(server):
        async with Client(server.port) as client:
            await make_vectors(client, ("a", "b", "d"))
            for _ in range(4):
                await client.rpc(
                    "op", tenant=TENANT, op="and", dst="d",
                    src1="a", src2="b",
                )
            family = server.metrics.get("ambit_serve_request_latency_ns")
            histogram = family.children[("op",)]
            exemplar = histogram.max_exemplar()
            assert exemplar is not None
            value, trace_id = exemplar
            trace = server.spans.get(trace_id)
            assert trace is not None and trace.cmd == "op"
            # The exemplar is the request's measured latency; the stored
            # wall clock extends past it only by the serialize tail.
            assert value <= trace.wall_ns * 1.5
            # And the wire protocol agrees with the in-process view.
            fetched = await client.rpc("spans", trace=trace_id)
            assert fetched["ok"] and fetched["spans"][0]["trace"] == trace_id

    run(scenario)


def test_flight_recorder_dumps_on_slo_breach(tmp_path):
    path = tmp_path / "flight.jsonl"

    async def scenario(server):
        async with Client(server.port) as client:
            await make_vectors(client, ("a", "b", "d"))
            await client.rpc(
                "op", tenant=TENANT, op="and", dst="d", src1="a", src2="b"
            )

    # An absurd SLO (1ns) makes every request a breach.
    run(scenario, small_config(slo_ms=1e-6, flight_path=str(path)))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines, "flight recorder never dumped"
    for trace in lines:
        assert validate_trace(trace) == [], trace
    assert any(t.get("flight_reason") == "slo_breach" for t in lines)
