"""Coalescer: hazard-safe wave planning, backpressure, drain loop."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.obs.metrics import MetricsRegistry
from repro.serve.coalescer import (
    Coalescer,
    OpRequest,
    Wave,
    plan_waves,
)
from repro.serve.protocol import E_BACKPRESSURE, ServeError


def rows(*addresses, bank=0, sub=0):
    return tuple(RowLocation(bank, sub, a) for a in addresses)


def req(op, dst, *srcs, future=None, tenant="t"):
    return OpRequest(
        op=op, tenant=tenant, dst=dst, srcs=tuple(srcs), future=future
    )


# ----------------------------------------------------------------------
# plan_waves: pure hazard logic
# ----------------------------------------------------------------------
def test_disjoint_same_op_fuses_into_one_wave():
    requests = [
        req(BulkOp.AND, rows(3 * i), rows(3 * i + 1), rows(3 * i + 2))
        for i in range(16)
    ]
    waves = plan_waves(requests)
    assert len(waves) == 1
    assert len(waves[0].requests) == 16


def test_mixed_ops_form_one_wave_per_op():
    requests = []
    for i in range(12):
        op = (BulkOp.AND, BulkOp.XOR, BulkOp.NOT)[i % 3]
        base = 10 * i
        srcs = [rows(base + 1)] + (
            [rows(base + 2)] if op.arity >= 2 else []
        )
        requests.append(req(op, rows(base), *srcs))
    waves = plan_waves(requests)
    assert len(waves) == 3
    assert sorted(len(w.requests) for w in waves) == [4, 4, 4]


def test_raw_hazard_splits_waves():
    """B reads A's destination: B must run in a later wave."""
    a = req(BulkOp.AND, rows(0), rows(1), rows(2))
    b = req(BulkOp.AND, rows(3), rows(0), rows(4))
    waves = plan_waves([a, b])
    assert len(waves) == 2
    assert waves[0].requests == [a]
    assert waves[1].requests == [b]


def test_war_hazard_splits_waves():
    """B writes what A reads: swapping them would corrupt A's input."""
    a = req(BulkOp.AND, rows(0), rows(1), rows(2))
    b = req(BulkOp.AND, rows(1), rows(3), rows(4))
    waves = plan_waves([a, b])
    assert [w.requests for w in waves] == [[a], [b]]


def test_waw_hazard_preserves_program_order():
    a = req(BulkOp.AND, rows(0), rows(1), rows(2))
    b = req(BulkOp.OR, rows(0), rows(3), rows(4))
    waves = plan_waves([a, b])
    assert [w.requests for w in waves] == [[a], [b]]


def test_independent_request_joins_earliest_legal_wave():
    """A request conflicting with nothing fuses into wave 0 of its op,
    even when queued after a long dependency chain."""
    chain = [
        req(BulkOp.AND, rows(0), rows(1), rows(2)),
        req(BulkOp.AND, rows(3), rows(0), rows(4)),   # RAW on 0
        req(BulkOp.AND, rows(5), rows(3), rows(6)),   # RAW on 3
    ]
    free = req(BulkOp.AND, rows(100), rows(101), rows(102))
    waves = plan_waves(chain + [free])
    assert len(waves) == 3
    assert free in waves[0].requests


def test_dependent_request_lands_after_its_barrier():
    """A same-op wave exists *before* the conflict: it must be skipped."""
    a = req(BulkOp.AND, rows(0), rows(1), rows(2))
    b = req(BulkOp.XOR, rows(5), rows(0), rows(6))    # reads 0 -> after a
    c = req(BulkOp.XOR, rows(7), rows(5), rows(8))    # reads 5 -> after b
    waves = plan_waves([a, b, c])
    assert len(waves) == 3
    assert waves[1].requests == [b]
    assert waves[2].requests == [c]


def test_wave_operands_concatenate_in_request_order():
    a = req(BulkOp.XOR, rows(0, 1), rows(2, 3), rows(4, 5))
    b = req(BulkOp.XOR, rows(6), rows(7), rows(8))
    wave = Wave(op=BulkOp.XOR)
    wave.add(a)
    wave.add(b)
    dst, (src1, src2, src3) = wave.operands()
    assert [loc.address for loc in dst] == [0, 1, 6]
    assert [loc.address for loc in src1] == [2, 3, 7]
    assert [loc.address for loc in src2] == [4, 5, 8]
    assert src3 is None


def test_unary_wave_pads_missing_sources():
    wave = Wave(op=BulkOp.NOT)
    wave.add(req(BulkOp.NOT, rows(0), rows(1)))
    _, (src1, src2, src3) = wave.operands()
    assert [loc.address for loc in src1] == [1]
    assert src2 is None and src3 is None


# ----------------------------------------------------------------------
# Coalescer: admission + drain
# ----------------------------------------------------------------------
def test_backpressure_is_synchronous_and_counted():
    async def scenario():
        metrics = MetricsRegistry()
        coalescer = Coalescer(
            runner=lambda waves: [],
            executor=None,
            metrics=metrics,
            max_queue=2,
        )
        # Drain loop deliberately not started: the queue cannot empty.
        loop = asyncio.get_event_loop()
        coalescer.submit(req(BulkOp.AND, rows(0), rows(1), rows(2),
                             future=loop.create_future()))
        coalescer.submit(req(BulkOp.AND, rows(3), rows(4), rows(5),
                             future=loop.create_future()))
        with pytest.raises(ServeError) as excinfo:
            coalescer.submit(req(BulkOp.AND, rows(6), rows(7), rows(8),
                                 future=loop.create_future()))
        assert excinfo.value.code == E_BACKPRESSURE
        family = metrics.get("ambit_serve_backpressure_total")
        assert family.value == 1
        metrics.collect()
        assert metrics.get("ambit_serve_queue_depth").value == 2

    asyncio.run(scenario())


def _drain_scenario(coalesce):
    """Submit a pipelined burst; return (wave batches seen, metrics)."""

    async def scenario():
        metrics = MetricsRegistry()
        batches = []

        def runner(waves):
            batches.append(waves)
            return [
                (request, None)
                for wave in waves
                for request in wave.requests
            ]

        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = Coalescer(
                runner=runner,
                executor=executor,
                metrics=metrics,
                coalesce=coalesce,
            )
            coalescer.start()
            loop = asyncio.get_event_loop()
            futures = []
            for i in range(8):
                future = loop.create_future()
                futures.append(future)
                coalescer.submit(req(
                    BulkOp.AND, rows(3 * i), rows(3 * i + 1),
                    rows(3 * i + 2), future=future,
                ))
            await asyncio.gather(*futures)
            await coalescer.close()
        return batches, metrics

    return asyncio.run(scenario())


def test_drain_fuses_a_pipelined_burst():
    batches, metrics = _drain_scenario(coalesce=True)
    fused = sum(
        len(wave.requests)
        for waves in batches
        for wave in waves
    )
    assert fused == 8
    # The first wave may dispatch alone, but the burst queued behind it
    # must fuse: far fewer batches than requests, and the coalesced
    # counter saw at least one multi-request wave.
    assert len(batches) < 8
    assert metrics.get("ambit_serve_coalesced_batches_total").value >= 1
    assert metrics.get("ambit_serve_batches_total").value == sum(
        len(waves) for waves in batches
    )


def test_coalesce_off_dispatches_one_request_per_batch():
    batches, metrics = _drain_scenario(coalesce=False)
    assert len(batches) == 8
    assert all(
        len(waves) == 1 and len(waves[0].requests) == 1
        for waves in batches
    )
    assert metrics.get("ambit_serve_coalesced_batches_total").value == 0


def test_runner_errors_reach_every_future():
    async def scenario():
        boom = RuntimeError("device on fire")

        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = Coalescer(
                runner=lambda waves: (_ for _ in ()).throw(boom),
                executor=executor,
            )
            coalescer.start()
            loop = asyncio.get_event_loop()
            future = loop.create_future()
            coalescer.submit(req(BulkOp.AND, rows(0), rows(1), rows(2),
                                 future=future))
            with pytest.raises(RuntimeError, match="device on fire"):
                await future
            await coalescer.close()

    asyncio.run(scenario())


def test_per_request_errors_are_routed_individually():
    async def scenario():
        fault = ServeError("fault", "unrecovered")

        def runner(waves):
            outcomes = []
            for wave in waves:
                for i, request in enumerate(wave.requests):
                    outcomes.append(
                        (request, fault if i == 0 else None)
                    )
            return outcomes

        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = Coalescer(runner=runner, executor=executor)
            coalescer.start()
            loop = asyncio.get_event_loop()
            first, second = loop.create_future(), loop.create_future()
            coalescer.submit(req(BulkOp.AND, rows(0), rows(1), rows(2),
                                 future=first))
            coalescer.submit(req(BulkOp.AND, rows(3), rows(4), rows(5),
                                 future=second))
            with pytest.raises(ServeError):
                await first
            assert await second is None
            await coalescer.close()

    asyncio.run(scenario())
