"""Load generator: a small deterministic soak must pass end to end.

This is the same scenario CI's serve-smoke job runs at larger scale:
a seeded client swarm against a self-hosted server, with the three
adversarial probes (coalescing burst, quota probe, pipelined
backpressure burst) armed as hard expectations.
"""

from repro.serve.loadgen import (
    LoadGenConfig,
    format_loadgen,
    run_loadgen,
)


def test_small_soak_passes_with_probes_armed():
    report = run_loadgen(LoadGenConfig(
        clients=8,
        ops=2,
        bits=1024,
        seed=1,
        burst=32,
        expect_coalescing=True,
        expect_backpressure=True,
        expect_quota=True,
    ))
    assert report.mismatches == 0
    # Scheduled ops plus whatever survived the backpressure burst.
    assert report.ops_ok >= 8 * 2
    assert report.backpressure_hits >= 1
    assert report.quota_hits >= 1
    assert report.server_totals["coalesced_batches"] >= 1
    assert report.slo_ok
    assert report.ok and report.exit_code == 0

    text = format_loadgen(report)
    assert "verdict: PASS" in text
    assert "[ok  ]" in text and "[FAIL]" not in text


def test_failed_expectation_fails_the_run():
    # No fault plan is armed, so expecting faults must fail the soak
    # (proving the gate cannot silently pass vacuously).
    report = run_loadgen(LoadGenConfig(
        clients=2,
        ops=1,
        bits=256,
        seed=0,
        burst=0,
        quota_probe=False,
        expect_faults=True,
    ))
    assert report.mismatches == 0
    assert not report.ok
    assert report.exit_code == 1
    assert "[FAIL]" in format_loadgen(report)
