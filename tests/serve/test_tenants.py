"""Tenant registry: quotas, admission, and their metric trail."""

import pytest

from repro.dram.geometry import small_test_geometry
from repro.obs.metrics import MetricsRegistry
from repro.serve.alloc import StripedAllocator
from repro.serve.protocol import (
    E_EXISTS,
    E_NO_VECTOR,
    E_QUOTA,
    ServeError,
)
from repro.serve.tenants import TenantQuota, TenantRegistry


def make_registry(quota=None, metrics=None):
    allocator = StripedAllocator(
        small_test_geometry(
            rows=32, row_bytes=64, banks=2, subarrays_per_bank=2
        ),
        scratch_rows=2,
    )
    return TenantRegistry(allocator, quota, metrics), allocator


def quota_count(metrics, tenant, kind):
    family = metrics.get("ambit_serve_quota_rejections_total")
    return family.labels(tenant=tenant, kind=kind).value


def test_create_lookup_delete_cycle():
    registry, allocator = make_registry()
    before = allocator.slots_free
    handle = registry.create_vector("t0", "a", bits=1000)
    assert handle.bits == 1000 and len(handle.rows) == 2
    assert registry.lookup("t0", "a") is handle
    assert allocator.slots_free < before

    dropped = registry.delete_vector("t0", "a")
    assert dropped is handle
    assert allocator.slots_free == before
    with pytest.raises(ServeError) as excinfo:
        registry.lookup("t0", "a")
    assert excinfo.value.code == E_NO_VECTOR


def test_duplicate_name_rejected():
    registry, _ = make_registry()
    registry.create_vector("t0", "a", bits=8)
    with pytest.raises(ServeError) as excinfo:
        registry.create_vector("t0", "a", bits=8)
    assert excinfo.value.code == E_EXISTS
    # Same name under another tenant is a different namespace.
    registry.create_vector("t1", "a", bits=8)


def test_vector_quota_counts_rejections():
    metrics = MetricsRegistry()
    registry, _ = make_registry(TenantQuota(max_vectors=2), metrics)
    registry.create_vector("noisy", "a", bits=8)
    registry.create_vector("noisy", "b", bits=8)
    for _ in range(3):
        with pytest.raises(ServeError) as excinfo:
            registry.create_vector("noisy", "c", bits=8)
        assert excinfo.value.code == E_QUOTA
    assert quota_count(metrics, "noisy", "vectors") == 3
    # The neighbour is not clipped.
    registry.create_vector("quiet", "a", bits=8)


def test_row_quota():
    metrics = MetricsRegistry()
    registry, allocator = make_registry(TenantQuota(max_rows=3), metrics)
    registry.create_vector("t0", "a", bits=2 * allocator.row_bits)  # 2 rows
    with pytest.raises(ServeError) as excinfo:
        registry.create_vector("t0", "b", bits=2 * allocator.row_bits)
    assert excinfo.value.code == E_QUOTA
    assert quota_count(metrics, "t0", "rows") == 1
    registry.create_vector("t0", "b", bits=1)  # 1 row still fits


def test_inflight_admission():
    metrics = MetricsRegistry()
    registry, _ = make_registry(TenantQuota(max_inflight=2), metrics)
    registry.admit("t0")
    registry.admit("t0")
    with pytest.raises(ServeError) as excinfo:
        registry.admit("t0")
    assert excinfo.value.code == E_QUOTA
    assert quota_count(metrics, "t0", "inflight") == 1
    registry.release("t0")
    registry.admit("t0")  # credit returned
    # Releasing an unknown tenant (or below zero) is a no-op.
    registry.release("ghost")


def test_zero_means_unlimited():
    registry, allocator = make_registry(
        TenantQuota(max_vectors=0, max_rows=0, max_inflight=0)
    )
    for i in range(allocator.slots_total):
        registry.create_vector("t0", f"v{i}", bits=1)
    for _ in range(1000):
        registry.admit("t0")


def test_gauges_track_live_state():
    metrics = MetricsRegistry()
    registry, allocator = make_registry(metrics=metrics)
    registry.create_vector("t0", "a", bits=8)
    registry.create_vector("t1", "b", bits=8)
    metrics.collect()
    assert metrics.get("ambit_serve_tenants").value == 2
    assert metrics.get("ambit_serve_vectors").value == 2
    assert (
        metrics.get("ambit_serve_slots_free").value == allocator.slots_free
    )
