"""End-to-end socket tests for the bulk-bitwise service.

Every test boots a real :class:`BulkBitwiseServer` on an ephemeral
port, speaks the NDJSON protocol over a TCP connection, and verifies
results bit-for-bit against a numpy model -- the same contract the
load generator enforces at scale.
"""

import asyncio
import json

import numpy as np

from repro.serve.protocol import pack_bits, unpack_bits
from repro.serve.server import BulkBitwiseServer, ServeConfig

BITS = 1000  # two 512-bit rows: exercises striping and padding
TENANT = "t0"

OP_MODELS = {
    "and": (2, lambda a, b: a & b),
    "or": (2, lambda a, b: a | b),
    "xor": (2, lambda a, b: a ^ b),
    "nand": (2, lambda a, b: ~(a & b)),
    "nor": (2, lambda a, b: ~(a | b)),
    "xnor": (2, lambda a, b: ~(a ^ b)),
    "not": (1, lambda a: ~a),
    "copy": (1, lambda a: a),
    "maj": (3, lambda a, b, c: (a & b) | (b & c) | (a & c)),
}


def small_config(**overrides):
    defaults = dict(banks=2, rows=32, row_bytes=64)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class Client:
    """Minimal NDJSON client; one pipelined TCP connection."""

    def __init__(self, port):
        self.port = port
        self.reader = self.writer = None
        self._next_id = 0

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def rpc(self, cmd, **fields):
        self._next_id += 1
        request = {"cmd": cmd, "id": self._next_id, **fields}
        self.writer.write((json.dumps(request) + "\n").encode())
        await self.writer.drain()
        response = json.loads(await self.reader.readline())
        assert response.get("id") == self._next_id
        return response

    async def expect_error(self, code, cmd, **fields):
        response = await self.rpc(cmd, **fields)
        assert response["ok"] is False, response
        assert response["error"] == code, response
        return response


async def make_vectors(client, names, seed=0, bits=BITS):
    """Create + write named random vectors; returns their models."""
    rng = np.random.default_rng(seed)
    models = {}
    for name in names:
        vector = rng.integers(0, 2, size=bits).astype(bool)
        response = await client.rpc(
            "create", tenant=TENANT, name=name, bits=bits
        )
        assert response["ok"], response
        response = await client.rpc(
            "write", tenant=TENANT, name=name, data=pack_bits(vector)
        )
        assert response["ok"], response
        models[name] = vector
    return models


async def read_vector(client, name, bits=BITS):
    response = await client.rpc("read", tenant=TENANT, name=name)
    assert response["ok"], response
    return unpack_bits(response["data"], bits)


def run(coro_fn, config=None):
    async def main():
        server = BulkBitwiseServer(config or small_config())
        await server.start()
        try:
            await coro_fn(server)
        finally:
            await server.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
def test_all_nine_ops_bit_exact():
    async def scenario(server):
        async with Client(server.port) as client:
            models = await make_vectors(client, ("a", "b", "c", "d"),
                                        seed=42)
            for op_name, (arity, model) in sorted(OP_MODELS.items()):
                srcs = ("a", "b", "c")[:arity]
                request = {
                    f"src{i + 1}": name for i, name in enumerate(srcs)
                }
                response = await client.rpc(
                    "op", tenant=TENANT, op=op_name, dst="d", **request
                )
                assert response["ok"], (op_name, response)
                models["d"] = model(*(models[s] for s in srcs))
                got = await read_vector(client, "d")
                assert np.array_equal(got, models["d"]), op_name
            # Sources were never clobbered.
            for name in ("a", "b", "c"):
                assert np.array_equal(
                    await read_vector(client, name), models[name]
                )

    run(scenario)


def test_create_zero_fills_and_delete_frees():
    async def scenario(server):
        async with Client(server.port) as client:
            response = await client.rpc(
                "create", tenant=TENANT, name="z", bits=BITS
            )
            assert response["ok"] and response["rows"] == 2
            assert not (await read_vector(client, "z")).any()

            free_before = server.allocator.slots_free
            response = await client.rpc(
                "delete", tenant=TENANT, name="z"
            )
            assert response["ok"]
            assert server.allocator.slots_free == free_before + 1
            await client.expect_error(
                "no_such_vector", "read", tenant=TENANT, name="z"
            )

    run(scenario)


def test_error_paths():
    async def scenario(server):
        async with Client(server.port) as client:
            await make_vectors(client, ("a", "b"), seed=1)
            await client.rpc("create", tenant=TENANT, name="tiny", bits=8)

            await client.expect_error("unknown_command", "reboot")
            await client.expect_error(
                "protocol", "create", tenant=TENANT, name="x", bits=True
            )
            await client.expect_error(
                "protocol", "op", tenant=TENANT, op="teleport",
                dst="a", src1="b",
            )
            await client.expect_error(
                "vector_exists", "create", tenant=TENANT, name="a",
                bits=BITS,
            )
            await client.expect_error(
                "no_such_vector", "op", tenant=TENANT, op="xor",
                dst="a", src1="ghost", src2="b",
            )
            # Arity and width violations are shape errors.
            await client.expect_error(
                "shape_mismatch", "op", tenant=TENANT, op="xor",
                dst="a", src1="b",
            )
            await client.expect_error(
                "shape_mismatch", "op", tenant=TENANT, op="xor",
                dst="a", src1="b", src2="tiny",
            )
            await client.expect_error(
                "shape_mismatch", "write", tenant=TENANT, name="a",
                data="ab",
            )
            # Tenants are namespaces: t1 cannot see t0's vectors.
            await client.expect_error(
                "no_such_vector", "read", tenant="other", name="a"
            )
            # A malformed line gets an error response, not a hangup.
            client.writer.write(b"this is not json\n")
            await client.writer.drain()
            response = json.loads(await client.reader.readline())
            assert response["ok"] is False
            assert response["error"] == "protocol"
            # The connection still works afterwards.
            response = await client.rpc("ping")
            assert response["pong"] is True

    run(scenario)


def test_pipelined_ops_coalesce_and_stats_see_it():
    async def scenario(server):
        async with Client(server.port) as client:
            models = await make_vectors(
                client, ("a", "b", "d0", "d1", "d2", "d3"), seed=2
            )
            # Pipeline a burst of disjoint-destination xors without
            # awaiting: they queue behind one wave and must fuse.
            burst = []
            for repeat in range(4):
                for dst in ("d0", "d1", "d2", "d3"):
                    burst.append({
                        "cmd": "op", "tenant": TENANT, "op": "xor",
                        "dst": dst, "src1": "a", "src2": "b",
                        "id": 10_000 + len(burst),
                    })
            payload = b"".join(
                (json.dumps(request) + "\n").encode() for request in burst
            )
            client.writer.write(payload)
            await client.writer.drain()
            responses = [
                json.loads(await client.reader.readline())
                for _ in burst
            ]
            assert all(r["ok"] for r in responses), responses

            expected = models["a"] ^ models["b"]
            for dst in ("d0", "d1", "d2", "d3"):
                assert np.array_equal(
                    await read_vector(client, dst), expected
                )

            response = await client.rpc("stats")
            totals = response["totals"]
            assert totals["batches"] >= 1
            assert totals["coalesced_batches"] >= 1
            assert totals["batches"] < len(burst)
            assert "ambit_serve_requests_total" in response["metrics"]
            assert totals["faults_unrecovered"] == 0

    run(scenario)


def test_quota_rejections_surface_on_the_wire():
    async def scenario(server):
        async with Client(server.port) as client:
            for i in range(2):
                response = await client.rpc(
                    "create", tenant=TENANT, name=f"v{i}", bits=8
                )
                assert response["ok"], response
            await client.expect_error(
                "quota", "create", tenant=TENANT, name="v2", bits=8
            )
            response = await client.rpc("stats")
            assert response["totals"]["quota_rejections"] == 1

    run(scenario, config=small_config(max_vectors=2))


def test_fault_injection_recovers_under_live_traffic():
    async def scenario(server):
        async with Client(server.port) as client:
            models = await make_vectors(client, ("a", "b", "d"), seed=3)
            for i in range(40):
                response = await client.rpc(
                    "op", tenant=TENANT, op="xor", dst="d",
                    src1="a", src2="b",
                )
                if response["ok"]:
                    models["d"] = models["a"] ^ models["b"]
                else:
                    # An unrecovered fault is allowed -- but it must be
                    # *reported*, never silent corruption.
                    assert response["error"] == "fault"
            response = await client.rpc("stats")
            totals = response["totals"]
            assert server.injector is not None
            assert len(server.injector.applied) >= 1
            assert totals["faults_recovered"] >= 1
            # Recovered faults leave no trace in the data.
            got = await read_vector(client, "d")
            if totals["faults_unrecovered"] == 0:
                assert np.array_equal(got, models["d"])

    run(
        scenario,
        config=small_config(fault_rate=0.08, fault_ops=64, seed=5),
    )
