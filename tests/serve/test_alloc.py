"""StripedAllocator: the slot model the whole serving layer leans on.

The load-bearing invariant is *triple alignment*: row ``i`` of ANY
vector lives on the same (bank, subarray) stripe, because the engine
pairs operands row-by-row and every (dst, src1, ...) triple must share
a (bank, subarray).  A per-vector stripe offset -- the obvious
"balance the banks" tweak -- would break every two-vector ``op``.
"""

import pytest

from repro.dram.geometry import small_test_geometry
from repro.errors import ConfigError
from repro.serve.alloc import StripedAllocator
from repro.serve.protocol import E_CAPACITY, ServeError


def make_allocator(banks=2, subs=2, scratch=2, spares=0):
    return StripedAllocator(
        small_test_geometry(
            rows=32, row_bytes=64, banks=banks, subarrays_per_bank=subs
        ),
        scratch_rows=scratch,
        spare_rows=spares,
    )


def test_slot_accounting():
    alloc = make_allocator()  # 14 data rows - 2 scratch = 12 slots
    assert alloc.rows_per_slot == 4  # 2 banks x 2 subarrays
    assert alloc.slots_total == 12
    assert alloc.slots_free == 12
    assert alloc.rows_for(1) == 1
    assert alloc.rows_for(alloc.row_bits) == 1
    assert alloc.rows_for(alloc.row_bits + 1) == 2


def test_reserved_tail_rows():
    alloc = make_allocator(scratch=2, spares=3)
    assert alloc.slots_total == 14 - 5
    assert alloc.scratch_rows == (9, 10)
    assert alloc.spare_rows == (11, 12, 13)


def test_reservation_can_exhaust_geometry():
    with pytest.raises(ConfigError):
        make_allocator(scratch=7, spares=7)  # 14 data rows, 0 left


def test_triple_alignment_across_vectors():
    """Row i of every vector shares one (bank, subarray) stripe."""
    alloc = make_allocator()
    a = alloc.allocate(6)
    b = alloc.allocate(6)
    c = alloc.allocate(6)
    for ra, rb, rc in zip(a, b, c):
        assert (ra.bank, ra.subarray) == (rb.bank, rb.subarray)
        assert (ra.bank, ra.subarray) == (rc.bank, rc.subarray)
    # The walk starts at stripe 0 regardless of what was allocated
    # before -- including after an odd-length vector.
    odd = alloc.allocate(3)
    late = alloc.allocate(2)
    assert (odd[0].bank, odd[0].subarray) == alloc.stripes[0]
    assert (late[0].bank, late[0].subarray) == alloc.stripes[0]


def test_multi_row_vectors_fan_across_banks():
    alloc = make_allocator()
    rows = alloc.allocate(4)
    assert [(r.bank, r.subarray) for r in rows] == list(alloc.stripes)
    # One slot: a single local address reserved on every stripe.
    assert len({r.address for r in rows}) == 1


def test_vectors_never_alias():
    alloc = make_allocator()
    seen = set()
    for _ in range(alloc.slots_total):
        for loc in alloc.allocate(4):
            key = (loc.bank, loc.subarray, loc.address)
            assert key not in seen
            seen.add(key)
    assert alloc.slots_free == 0


def test_capacity_error_and_free_reuse():
    alloc = make_allocator()
    vectors = [alloc.allocate(4) for _ in range(alloc.slots_total)]
    with pytest.raises(ServeError) as excinfo:
        alloc.allocate(1)
    assert excinfo.value.code == E_CAPACITY

    # Freeing returns the slots, and re-allocation is deterministic:
    # lowest local address first.
    alloc.free(vectors[3])
    alloc.free(vectors[0])
    assert alloc.slots_free == 2
    again = alloc.allocate(4)
    assert again[0].address == vectors[0][0].address


def test_single_row_vectors_stack_on_stripe_zero():
    """Width <= row_bits allocates one row -- always stripe 0, fresh slot."""
    alloc = make_allocator()
    a = alloc.allocate(1)
    b = alloc.allocate(1)
    assert (a[0].bank, a[0].subarray) == alloc.stripes[0]
    assert (b[0].bank, b[0].subarray) == alloc.stripes[0]
    assert a[0].address != b[0].address
