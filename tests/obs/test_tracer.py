"""Tracer + sink unit tests: the chip-to-sink reporting path."""

import io
import json

import pytest

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.obs import (
    ChromeTraceSink,
    CounterSet,
    CounterSink,
    JsonLinesSink,
    RingBufferSink,
    Tracer,
)
from repro.obs.events import KIND_COMMAND, KIND_OP, KIND_PRIMITIVE, TraceEvent

DST = RowLocation(0, 0, 3)
SRC1 = RowLocation(0, 0, 0)
SRC2 = RowLocation(0, 0, 1)


@pytest.fixture
def traced(device):
    """Device with a ring-buffer tracer attached; yields (device, ring)."""
    ring = RingBufferSink()
    device.attach_tracer(
        Tracer(sinks=[ring], timing=device.timing, row_bytes=device.row_bytes)
    )
    yield device, ring
    device.detach_tracer()


class TestChipReporting:
    def test_every_command_reported(self, traced):
        device, ring = traced
        device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
        commands = ring.commands()
        # Figure 8a: four AAPs = 4 * (ACT, ACT, PRE) = 12 bus commands.
        assert [e.name for e in commands] == ["ACT", "ACT", "PRE"] * 4
        assert len(commands) == len(device.chip.trace)

    def test_tra_wordlines_reported(self, traced):
        device, ring = traced
        device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
        tras = [e for e in ring.commands() if e.wordlines >= 3]
        assert len(tras) == 1  # the single triple-row activation
        assert tras[0].name == "ACT"

    def test_write_payload_in_attrs(self, traced):
        device, ring = traced
        chip = device.chip
        chip.activate(0, 0, 5)
        chip.write_word(0, 0, 0xDEADBEEF)
        chip.write_word(0, 1, 0)  # zero payloads must survive too
        chip.precharge(0)
        writes = [e for e in ring.commands() if e.name == "WR"]
        assert [e.attrs["write_value"] for e in writes] == [0xDEADBEEF, 0]

    def test_nominal_durations_from_timing(self, traced):
        device, ring = traced
        device.bbop_row(BulkOp.NOT, DST, SRC1)
        t = device.timing
        for event in ring.commands():
            expected = t.tRCD if event.name == "ACT" else t.tRP
            assert event.dur_ns == expected
            assert event.energy_pj > 0

    def test_no_timing_means_zero_duration(self):
        from repro.dram.commands import Command, IssuedCommand, Opcode

        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        issued = IssuedCommand(Command(Opcode.ACTIVATE, bank=0, subarray=0, row=1))
        tracer.record_command(issued, clock_ns=10.0)
        assert ring.events[0].dur_ns == 0.0
        assert ring.events[0].ts_ns == 10.0

    def test_detach_stops_reporting(self, traced):
        device, ring = traced
        device.bbop_row(BulkOp.NOT, DST, SRC1)
        seen = len(ring)
        device.detach_tracer()
        device.bbop_row(BulkOp.NOT, DST, SRC1)
        assert len(ring) == seen
        # chip's own raw trace still grows, unaffected by detaching
        assert len(device.chip.trace) > seen / 2

    def test_op_and_primitive_events(self, traced):
        device, ring = traced
        device.bbop_row(BulkOp.XOR, DST, SRC1, SRC2)
        names = [e.name for e in ring.of_kind(KIND_PRIMITIVE)]
        assert names.count("AAP") == 5 and names.count("AP") == 2  # Figure 8d
        (op,) = ring.of_kind(KIND_OP)
        assert op.name == "xor"
        assert op.attrs == {"aaps": 5, "aps": 2, "commands": 19}
        # op span covers exactly the accounted latency
        assert op.dur_ns == pytest.approx(
            device.controller.op_latency_ns(BulkOp.XOR)
        )

    def test_psm_copy_traced(self, traced):
        device, ring = traced
        device.psm_copy(RowLocation(0, 0, 0), RowLocation(1, 0, 0))
        names = [e.name for e in ring.of_kind(KIND_PRIMITIVE)]
        assert names == ["PSM_COPY"]
        (op,) = ring.of_kind(KIND_OP)
        assert op.name == "psm_copy"


class TestSinks:
    def test_ring_buffer_capacity(self):
        ring = RingBufferSink(capacity=3)
        for i in range(10):
            ring.emit(TraceEvent(kind="cmd", name="ACT", ts_ns=float(i), seq=i))
        assert len(ring) == 3
        assert [e.seq for e in ring.events] == [7, 8, 9]
        ring.clear()
        assert len(ring) == 0

    def test_jsonl_sink_parseable(self, device):
        buf = io.StringIO()
        sink = JsonLinesSink(buf)
        device.attach_tracer(
            Tracer(sinks=[sink], timing=device.timing, row_bytes=device.row_bytes)
        )
        try:
            device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
        finally:
            device.detach_tracer()
        sink.close()
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(records) == 12 + 4 + 1  # commands + AAPs + op
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        kinds = {r["kind"] for r in records}
        assert kinds == {"cmd", "primitive", "op"}
        tra = [r for r in records if r.get("wordlines", 1) >= 3]
        assert len(tra) == 1

    def test_chrome_sink_document_valid(self, device, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path))
        device.attach_tracer(
            Tracer(sinks=[sink], timing=device.timing, row_bytes=device.row_bytes)
        )
        try:
            device.bbop_row(BulkOp.NAND, DST, SRC1, SRC2)
        finally:
            device.detach_tracer()
        sink.close()
        sink.close()  # idempotent

        document = json.loads(path.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert any(m["name"] == "process_name" for m in meta)
        assert any(m["args"]["name"] == "bank0/cmds" for m in meta)
        assert any(m["args"]["name"] == "bank0/ops" for m in meta)
        for record in spans:
            assert set(record) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert record["dur"] > 0
        # commands on the even lane, primitives/ops on the odd lane
        assert {r["tid"] for r in spans if r["cat"] == "cmd"} == {0}
        assert {r["tid"] for r in spans if r["cat"] != "cmd"} == {1}

    def test_counter_sink_streaming_matches_batch(self, device):
        counter_sink = CounterSink()
        ring = RingBufferSink()
        device.attach_tracer(
            Tracer(
                sinks=[counter_sink, ring],
                timing=device.timing,
                row_bytes=device.row_bytes,
            )
        )
        try:
            device.bbop_row(BulkOp.NOR, DST, SRC1, SRC2)
        finally:
            device.detach_tracer()
        batch = CounterSet().observe_all(ring.events)
        assert counter_sink.counters.as_dict() == batch.as_dict()


class TestCounterSet:
    def _sample(self, aaps=2, busy=10.0):
        c = CounterSet()
        c.aaps = aaps
        c.busy_ns = busy
        c.ops = {"and": 1}
        return c

    def test_delta_arithmetic(self):
        after = self._sample(aaps=5, busy=30.0)
        after.ops = {"and": 2, "xor": 1}
        before = self._sample(aaps=2, busy=10.0)
        delta = after - before
        assert delta.aaps == 3
        assert delta.busy_ns == pytest.approx(20.0)
        assert delta.ops == {"and": 1, "xor": 1}

    def test_add_and_copy_independent(self):
        a = self._sample()
        b = a.copy()
        b.aaps += 1
        b.ops["and"] += 1
        assert a.aaps == 2 and a.ops == {"and": 1}
        total = a + b
        assert total.aaps == 5
        assert total.ops == {"and": 3}

    def test_commands_property_and_format(self):
        c = CounterSet(activates=8, precharges=4, writes=2)
        assert c.commands == 14
        text = c.format()
        assert "ACT 8" in text and "WR 2" in text

    def test_tra_vs_dcc_classification(self):
        events = [
            TraceEvent(kind=KIND_COMMAND, name="ACT", ts_ns=0, wordlines=3),
            TraceEvent(kind=KIND_COMMAND, name="ACT", ts_ns=1, wordlines=2),
            TraceEvent(kind=KIND_COMMAND, name="ACT", ts_ns=2, wordlines=1),
        ]
        c = CounterSet().observe_all(events)
        assert c.activates == 3
        assert c.tras == 1
        assert c.double_row_activations == 1


def test_tracer_context_manager_closes_sinks():
    class Closeable(RingBufferSink):
        closed = False

        def close(self):
            self.closed = True

    sink = Closeable()
    with Tracer(sinks=[sink]) as tracer:
        tracer.span("x", 0.0, 1.0)
    assert sink.closed
    assert sink.events[0].kind == "span"
