"""Unit tests for request spans: breakdown tiling, store, recorder.

The e2e contract (fault-injected traffic through a real server yields
span trees whose stages sum to the wall clock) lives in
``tests/serve/test_spans_e2e.py``; this file pins the pieces in
isolation, including the invariants the CI sum-check leans on:
``sum(stages) == wall_ns`` holds *by construction*, not within a
tolerance.
"""

import json

import pytest

from repro.obs.spans import (
    STAGE_COALESCE,
    STAGE_DEVICE,
    STAGE_OTHER,
    STAGE_QUEUE,
    STAGE_RECOVERY,
    STAGE_SERIALIZE,
    STAGES,
    FlightRecorder,
    RequestSpanCtx,
    RequestTrace,
    SpanStore,
    chrome_trace,
    format_spans_table,
    format_trace_tree,
    new_trace_id,
    validate_trace,
)


def make_ctx(with_device=True, attempts=(), start=1_000_000):
    ctx = RequestSpanCtx(cmd="op", tenant="t0", op="and", start_ns=start)
    ctx.mark("submitted", start + 100)
    ctx.mark("drained", start + 300)
    if with_device:
        ctx.adopt({
            "device_start": start + 500,
            "device_end": start + 2_500,
            "attempts": list(attempts),
            "wave": {"index": 3, "requests": 4, "wave_op": "and"},
        })
    ctx.mark("result", start + 2_600)
    return ctx


# ----------------------------------------------------------------------
# Breakdown tiling
# ----------------------------------------------------------------------
def test_breakdown_tiles_wall_exactly():
    ctx = make_ctx()
    end = ctx.t0 + 3_000
    stages = ctx.breakdown(end)
    assert set(stages) == set(STAGES)
    assert sum(stages.values()) == end - ctx.t0
    assert stages[STAGE_QUEUE] == 200       # submitted -> drained
    assert stages[STAGE_COALESCE] == 200    # drained -> device_start
    assert stages[STAGE_DEVICE] == 2_000    # no recovery
    assert stages[STAGE_RECOVERY] == 0
    assert stages[STAGE_SERIALIZE] == 400   # result -> end
    assert all(v >= 0 for v in stages.values())


def test_breakdown_carves_recovery_out_of_device():
    attempt = {"action": "retry", "op": "and", "bank": 0, "subarray": 0,
               "address": 5, "ok": True,
               "start_ns": 1_000_000 + 600, "dur_ns": 700}
    ctx = make_ctx(attempts=[attempt])
    stages = ctx.breakdown(ctx.t0 + 3_000)
    assert stages[STAGE_RECOVERY] == 700
    assert stages[STAGE_DEVICE] == 2_000 - 700
    assert sum(stages.values()) == 3_000


def test_breakdown_recovery_clamped_to_device_time():
    # A bogus attempt longer than the device window must not push the
    # device stage negative.
    attempt = {"action": "remap", "start_ns": 0, "dur_ns": 10_000_000}
    ctx = make_ctx(attempts=[attempt])
    stages = ctx.breakdown(ctx.t0 + 3_000)
    assert stages[STAGE_DEVICE] == 0
    assert stages[STAGE_RECOVERY] == 2_000
    assert sum(stages.values()) == 3_000


def test_breakdown_without_device_marks():
    # A ping never touches the coalescer or the device: everything
    # lands in serialize + other, and the sum still tiles.
    ctx = RequestSpanCtx(cmd="ping", start_ns=1_000)
    ctx.mark("result", 1_800)
    stages = ctx.breakdown(2_000)
    assert stages[STAGE_QUEUE] == 0
    assert stages[STAGE_DEVICE] == 0
    assert stages[STAGE_SERIALIZE] == 200
    assert stages[STAGE_OTHER] == 800
    assert sum(stages.values()) == 1_000


def test_mark_is_idempotent():
    ctx = RequestSpanCtx(cmd="op", start_ns=0)
    ctx.mark("submitted", 10)
    ctx.mark("submitted", 999)
    assert ctx.marks["submitted"] == 10


# ----------------------------------------------------------------------
# Finish: the materialized trace
# ----------------------------------------------------------------------
def test_finish_builds_validatable_tree():
    attempt = {"action": "dcc_reroute", "op": "and", "bank": 1,
               "subarray": 0, "address": 7, "ok": True,
               "start_ns": 1_000_000 + 700, "dur_ns": 300}
    ctx = make_ctx(attempts=[attempt])
    trace = ctx.finish("ok", end_ns=ctx.t0 + 3_000)
    data = trace.to_dict()
    assert validate_trace(data) == []
    names = [span["name"] for span in data["spans"]]
    assert names[0] == "request:op"
    assert "queue" in names and "device" in names
    assert "recovery:dcc_reroute" in names
    assert "serialize" in names
    # Recovery attempts are children of the device span.
    device = next(s for s in data["spans"] if s["name"] == "device")
    recovery = next(
        s for s in data["spans"] if s["name"].startswith("recovery:")
    )
    assert recovery["parent"] == device["span"]
    assert device["attrs"]["requests"] == 4
    assert trace.wall_ns == 3_000
    assert trace.status == "ok"


def test_finish_is_lazy_and_roundtrips():
    ctx = make_ctx()
    trace = ctx.finish("ok", end_ns=ctx.t0 + 3_000)
    # Materialization is deferred until the span tree is first read.
    assert trace._spans is None
    data = json.loads(json.dumps(trace.to_dict(), sort_keys=True))
    assert trace._spans is not None
    back = RequestTrace.from_dict(data)
    assert back.trace == trace.trace
    assert back.stages == trace.stages
    assert [s.name for s in back.spans] == [s.name for s in trace.spans]
    assert validate_trace(back.to_dict()) == []


def test_trace_ids_are_unique():
    ids = {new_trace_id() for _ in range(1000)}
    assert len(ids) == 1000


# ----------------------------------------------------------------------
# SpanStore
# ----------------------------------------------------------------------
def finished(wall=1_000, tenant="t0", op="and", status="ok", start=0):
    ctx = RequestSpanCtx(cmd="op", tenant=tenant, op=op, start_ns=start)
    ctx.mark("result", start + wall)
    return ctx.finish(status, end_ns=start + wall)


def test_store_ring_bounds_and_lookup():
    store = SpanStore(capacity=4)
    traces = [store.add(finished(wall=100 * (i + 1))) for i in range(6)]
    assert len(store) == 4
    assert store.get(traces[0].trace) is None      # aged out
    assert store.get(traces[5].trace) is traces[5]
    assert [t.seq for t in store.list()] == [3, 4, 5, 6]


def test_store_slowest_and_filters():
    store = SpanStore(capacity=16)
    store.add(finished(wall=500, tenant="a", op="and"))
    store.add(finished(wall=2_000, tenant="b", op="xor"))
    store.add(finished(wall=1_000, tenant="a", op="xor"))
    slowest = store.list(slowest=2)
    assert [t.wall_ns for t in slowest] == [2_000, 1_000]
    assert [t.tenant for t in store.list(tenant="a")] == ["a", "a"]
    assert all(t.op == "xor" for t in store.list(op="xor"))
    assert len(store.list(since_seq=2)) == 1


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------
def test_recorder_dumps_on_trigger_code(tmp_path):
    path = tmp_path / "flight.jsonl"
    store = SpanStore(capacity=8)
    recorder = FlightRecorder(
        store, path=str(path), trigger_codes=("fault",)
    )
    ok = store.add(finished(status="ok"))
    assert recorder.observe(ok) is None
    assert not path.exists()
    bad = store.add(finished(status="fault"))
    assert recorder.observe(bad) == "fault"
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 2                      # whole ring, once
    assert lines[-1]["flight_reason"] == "fault"
    assert lines[-1]["flight_trigger"] == bad.trace
    assert validate_trace(lines[-1]) == []
    # A second trigger dumps only traces recorded since the last dump.
    bad2 = store.add(finished(status="fault"))
    recorder.observe(bad2)
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    assert recorder.dumps == 2


def test_recorder_slo_trigger(tmp_path):
    path = tmp_path / "flight.jsonl"
    store = SpanStore(capacity=8)
    recorder = FlightRecorder(store, path=str(path), slo_ms=1.0)
    fast = store.add(finished(wall=500_000))        # 0.5 ms
    assert recorder.observe(fast) is None
    slow = store.add(finished(wall=5_000_000))      # 5 ms
    assert recorder.observe(slow) == FlightRecorder.REASON_SLO
    assert path.exists()


def test_recorder_without_path_counts_but_does_not_dump():
    store = SpanStore(capacity=8)
    recorder = FlightRecorder(store, path=None, trigger_codes=("fault",))
    bad = store.add(finished(status="fault"))
    assert recorder.observe(bad) == "fault"
    assert recorder.dumps == 0


# ----------------------------------------------------------------------
# Validation and rendering
# ----------------------------------------------------------------------
def test_validate_catches_bad_traces():
    good = finished().to_dict()
    assert validate_trace(good) == []

    assert validate_trace({}) != []

    broken_sum = finished(wall=10_000).to_dict()
    broken_sum["stages"]["other"] += 5_000
    assert any("sum" in p for p in validate_trace(broken_sum))

    negative = finished(wall=10_000).to_dict()
    negative["stages"]["queue"] = -5
    assert any("negative stage" in p for p in validate_trace(negative))

    orphan = finished(wall=10_000).to_dict()
    orphan["spans"][1]["parent"] = "nope"
    assert any("unknown parent" in p for p in validate_trace(orphan))

    two_roots = finished(wall=10_000).to_dict()
    two_roots["spans"].append(dict(two_roots["spans"][0], span="dup"))
    assert any("one root" in p for p in validate_trace(two_roots))


def test_renderers_and_chrome_export():
    traces = [make_ctx().finish("ok", end_ns=1_000_000 + 3_000).to_dict()]
    table = format_spans_table(traces)
    assert "wall ms" in table and "t0" in table
    tree = format_trace_tree(traces[0])
    assert "request:op" in tree and "breakdown:" in tree

    payload = chrome_trace(traces)
    events = payload["traceEvents"]
    assert any(e["ph"] == "M" for e in events)      # lane metadata
    xs = [e for e in events if e["ph"] == "X"]
    assert xs and all(e["dur"] > 0 for e in xs)
    assert min(e["ts"] for e in xs) == pytest.approx(0.0)
    assert format_spans_table([]) == "(no spans recorded)"
