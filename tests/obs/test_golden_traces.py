"""Golden command-sequence regression tests (Figure 8).

Every bulk bitwise operation's exact DRAM command stream is pinned to a
checked-in file under ``tests/golden/``.  A byte changed in microprogram
sequencing -- a reordered AAP, a different control row, an extra
PRECHARGE -- fails here with a diff instead of drifting silently.
"""

import pytest

from repro.core.microprograms import COMPILERS, BulkOp, compile_nand, compile_or
from tests.golden.regen import (
    DST,
    GOLDEN_OPS,
    SRC1,
    SRC2,
    golden_path,
    golden_trace_text,
)

REGEN_HINT = (
    "command sequence drifted from tests/golden/; if this change is "
    "intentional, regenerate with `PYTHONPATH=src python -m "
    "tests.golden.regen` and commit the diff"
)


@pytest.mark.parametrize("op", GOLDEN_OPS, ids=lambda op: op.value)
def test_golden_command_sequence(op):
    """Byte-for-byte equality against the checked-in golden trace."""
    golden = golden_path(op).read_text()
    assert golden_trace_text(op) == golden, f"{op.value}: {REGEN_HINT}"


def test_golden_files_are_distinct():
    """The seven programs are genuinely different command streams
    (except the and/or and nand/nor pairs, which differ only in the
    control-row address -- still distinct lines)."""
    texts = {op.value: golden_path(op).read_text() for op in GOLDEN_OPS}
    assert len(set(texts.values())) == len(texts)


def test_command_log_fixture_matches_golden(device, command_log):
    """The ``command_log`` fixture records the same canonical stream."""
    device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
    assert command_log.text() + "\n" == golden_path(BulkOp.AND).read_text()
    counters = command_log.counters()
    assert counters.aaps == 4
    assert counters.aps == 0
    assert counters.tras == 1  # the one TRA of Figure 8a
    assert counters.ops == {"and": 1}


def test_command_log_clear_resets(device, command_log):
    device.bbop_row(BulkOp.NOT, DST, SRC1)
    command_log.clear()
    assert command_log.lines() == []
    assert command_log.counters().commands == 0
    device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
    assert command_log.text() + "\n" == golden_path(BulkOp.AND).read_text()


class TestDeliberateMutationIsCaught:
    """The acceptance criterion: a microprogram mutation must fail the
    golden comparison, not pass unnoticed."""

    def test_swapped_control_row(self, monkeypatch):
        # AND compiled as OR: identical shape, one control-row address
        # differs (C0 -> C1).  Exactly the subtle drift goldens exist for.
        monkeypatch.setitem(COMPILERS, BulkOp.AND, compile_or)
        assert golden_trace_text(BulkOp.AND) != golden_path(BulkOp.AND).read_text()

    def test_wrong_program_shape(self, monkeypatch):
        monkeypatch.setitem(COMPILERS, BulkOp.OR, compile_nand)
        assert golden_trace_text(BulkOp.OR) != golden_path(BulkOp.OR).read_text()
