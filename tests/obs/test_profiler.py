"""Profiler + profile-workload + CLI tests."""

import json

import pytest

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.errors import ConfigError
from repro.obs import RingBufferSink, Tracer
from repro.perf.profiling import (
    LOGIC_OPS,
    WORKLOADS,
    profile_geometry,
    run_profile_workload,
)

DST = RowLocation(0, 0, 3)
SRC1 = RowLocation(0, 0, 0)
SRC2 = RowLocation(0, 0, 1)


class TestProfileContextManager:
    def test_temporary_tracer_attached_and_removed(self, device):
        assert device.tracer is None
        with device.profile() as prof:
            assert device.tracer is not None
            device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
        assert device.tracer is None
        assert prof.counters.aaps == 4
        assert prof.per_op["and"].count == 1

    def test_piggybacks_on_existing_tracer(self, device):
        ring = RingBufferSink()
        tracer = device.attach_tracer(
            Tracer(sinks=[ring], timing=device.timing, row_bytes=device.row_bytes)
        )
        try:
            with device.profile() as prof:
                device.bbop_row(BulkOp.NOT, DST, SRC1)
            # profiling must not tear down the user's tracer or sinks
            assert device.tracer is tracer
            assert tracer.sinks == [ring]
            assert prof.per_op["not"].count == 1
        finally:
            device.detach_tracer()

    def test_region_is_a_delta(self, device):
        device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)  # outside the region
        with device.profile() as prof:
            device.bbop_row(BulkOp.XOR, DST, SRC1, SRC2)
        assert set(prof.per_op) == {"xor"}
        assert prof.counters.ops == {"xor": 1}

    def test_per_op_structure_matches_microprograms(self, device):
        with device.profile() as prof:
            device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
            device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
            device.bbop_row(BulkOp.XOR, DST, SRC1, SRC2)
        and_stats = prof.per_op["and"]
        assert (and_stats.count, and_stats.aaps, and_stats.aps) == (2, 8, 0)
        xor_stats = prof.per_op["xor"]
        assert (xor_stats.count, xor_stats.aaps, xor_stats.aps) == (1, 5, 2)
        for op, stats in prof.per_op.items():
            expected = device.controller.op_latency_ns(BulkOp(op)) * stats.count
            assert stats.busy_ns == pytest.approx(expected)

    def test_busy_matches_controller_accounting(self, device):
        before = device.controller.stats.busy_ns
        with device.profile() as prof:
            device.bbop_row(BulkOp.NAND, DST, SRC1, SRC2)
            device.bbop_row(BulkOp.OR, DST, SRC1, SRC2)
        delta = device.controller.stats.busy_ns - before
        assert prof.counters.busy_ns == pytest.approx(delta)

    def test_psm_copy_profiled(self, device):
        with device.profile() as prof:
            device.psm_copy(RowLocation(0, 0, 0), RowLocation(1, 0, 0))
        assert prof.counters.rowclone_psm == 1
        assert prof.per_op["psm_copy"].count == 1

    def test_format_table_renders(self, device):
        with device.profile() as prof:
            device.bbop_row(BulkOp.AND, DST, SRC1, SRC2)
        table = prof.format_table()
        assert "and" in table
        assert "busy ns" in table
        assert "AAP / AP" in table  # counter footer

    def test_empty_region_renders(self, device):
        with device.profile() as prof:
            pass
        assert "(no bulk operations executed)" in prof.format_table()
        assert prof.rows() == []


class TestProfileWorkloads:
    def test_all_workload_covers_seven_logic_ops(self):
        report = run_profile_workload("all", repeats=1)
        for op in LOGIC_OPS:
            assert report.per_op[op.value].count == 1
        assert report.counters.tras > 0

    def test_single_op_workload(self):
        report = run_profile_workload("xor", repeats=3)
        assert set(report.per_op) == {"xor"}
        assert report.per_op["xor"].count == 3
        assert report.per_op["xor"].aaps == 15

    def test_copy_workload_counts_rowclone(self):
        report = run_profile_workload("copy", repeats=2)
        assert report.counters.rowclone_fpm == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            run_profile_workload("frobnicate")

    def test_bad_repeats_rejected(self):
        with pytest.raises(ConfigError):
            run_profile_workload("and", repeats=0)

    def test_workload_registry_names(self):
        assert "all" in WORKLOADS and "maj" in WORKLOADS
        geo = profile_geometry(row_bytes=128)
        assert geo.subarray.row_bytes == 128

    def test_tracer_detached_after_workload(self):
        # run_profile_workload builds its own device, but must not leak
        # sinks into ours: exercised via the sinks parameter round trip.
        ring = RingBufferSink()
        run_profile_workload("not", repeats=1, sinks=(ring,))
        assert len(ring.commands()) > 0
        assert len(ring.of_kind("op")) == 1


class TestProfileCli:
    def test_profile_subcommand_emits_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        rc = main(
            [
                "profile",
                "all",
                "--repeats",
                "1",
                "--row-bytes",
                "128",
                "--chrome-trace",
                str(trace_path),
                "--jsonl",
                str(jsonl_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "xor" in out and "busy ns" in out

        document = json.loads(trace_path.read_text())
        assert isinstance(document["traceEvents"], list)
        cats = {e.get("cat") for e in document["traceEvents"] if e["ph"] == "X"}
        assert cats == {"cmd", "primitive", "op"}

        for line in jsonl_path.read_text().splitlines():
            json.loads(line)

    def test_profile_subcommand_default_workload(self, capsys):
        from repro.cli import main

        assert main(["profile", "--repeats", "1", "--row-bytes", "64"]) == 0
        assert "and" in capsys.readouterr().out

    def test_profile_subcommand_unknown_workload(self):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(["profile", "nonsense"])
