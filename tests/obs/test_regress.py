"""The benchmark-regression gate: path extraction, tolerances, reports."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.regress import (
    EQUAL,
    HIGHER,
    LOWER,
    ENGINE_SPECS,
    PARALLEL_SPECS,
    MetricSpec,
    RegressionReport,
    check_metric,
    compare,
    extract,
    load_baseline,
)

PAYLOAD = {
    "op": "and",
    "results": [
        {"banks": 1, "speedup": 10.0},
        {"banks": 8, "speedup": 15.0, "parallelism": 8.0},
    ],
    "montecarlo": {"failures": 412816, "deterministic": True},
}


# ----------------------------------------------------------------------
# Path extraction
# ----------------------------------------------------------------------
def test_extract_dotted_paths_and_selectors():
    assert extract(PAYLOAD, "op") == "and"
    assert extract(PAYLOAD, "montecarlo.failures") == 412816
    assert extract(PAYLOAD, "results[banks=8].speedup") == 15.0
    assert extract(PAYLOAD, "results[banks=1].speedup") == 10.0


def test_extract_errors():
    with pytest.raises(ConfigError, match="no key"):
        extract(PAYLOAD, "missing")
    with pytest.raises(ConfigError, match="matched 0"):
        extract(PAYLOAD, "results[banks=4].speedup")
    with pytest.raises(ConfigError, match="not a list"):
        extract(PAYLOAD, "montecarlo[x=1].y")
    with pytest.raises(ConfigError, match="malformed"):
        extract(PAYLOAD, "results[banks.speedup")


# ----------------------------------------------------------------------
# Comparison semantics
# ----------------------------------------------------------------------
def test_higher_direction_floors():
    spec = MetricSpec("s", HIGHER, tolerance=0.5)
    assert check_metric(spec, 10.0, 6.0).ok       # floor is 5.0
    assert not check_metric(spec, 10.0, 4.0).ok
    # tolerance_scale widens the floor.
    assert check_metric(spec, 10.0, 4.0, tolerance_scale=1.5).ok


def test_lower_direction_ceilings():
    spec = MetricSpec("s", LOWER, tolerance=0.1)
    assert check_metric(spec, 100.0, 105.0).ok
    assert not check_metric(spec, 100.0, 120.0).ok


def test_equal_direction_and_non_numeric():
    exact = MetricSpec("s", EQUAL)
    assert check_metric(exact, 412816, 412816).ok
    assert not check_metric(exact, 412816, 412817).ok
    near = MetricSpec("s", EQUAL, tolerance=1e-9)
    assert check_metric(near, 334.3673, 334.3673 * (1 + 1e-12)).ok
    # Booleans and strings compare exactly, never numerically.
    assert check_metric(exact, True, True).ok
    assert not check_metric(exact, True, 1.5).ok
    assert not check_metric(exact, "and", "or").ok
    # NaN always fails.
    assert not check_metric(MetricSpec("s", HIGHER), float("nan"), 1.0).ok


def test_spec_validation():
    with pytest.raises(ConfigError):
        MetricSpec("s", "sideways")
    with pytest.raises(ConfigError):
        MetricSpec("s", HIGHER, tolerance=-0.1)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_compare_builds_report_with_failures():
    baseline = {"a": 10.0, "flag": True}
    current = {"a": 2.0, "flag": True}
    specs = (
        MetricSpec("a", HIGHER, tolerance=0.5),
        MetricSpec("flag", EQUAL),
    )
    report = compare("demo", baseline, current, specs)
    assert not report.ok
    assert [c.path for c in report.failures] == ["a"]
    text = report.format()
    assert "demo: REGRESSION" in text
    assert "[FAIL] a:" in text
    assert "[ok  ] flag:" in text

    good = compare("demo", baseline, dict(baseline), specs)
    assert good.ok and "demo: OK" in good.format()


def test_empty_report_is_ok():
    assert RegressionReport(name="absent").ok


def test_load_baseline_round_trip(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(PAYLOAD))
    assert load_baseline(str(path)) == PAYLOAD


def test_default_specs_cover_committed_baselines():
    """The shipped spec sets address fields the benchmarks actually emit."""
    engine_fields = {s.path.split(".")[-1] for s in ENGINE_SPECS}
    assert {"parallelism", "speedup", "batched_rows_per_s"} <= engine_fields
    parallel_paths = {s.path for s in PARALLEL_SPECS}
    assert "montecarlo.failures" in parallel_paths
    assert "bulk_ops.bit_exact" in parallel_paths
    # Wall-clock metrics must carry loose tolerance; deterministic ones
    # tight.
    for spec in ENGINE_SPECS + PARALLEL_SPECS:
        if "speedup" in spec.path or "rows_per_s" in spec.path:
            assert spec.tolerance >= 0.5, spec
        else:
            assert spec.tolerance <= 1e-6, spec


def test_waiver_checks_surface_waived_tiers():
    from repro.obs.regress import waiver_checks

    payload = {
        "speedup_tier": "waived-single-core",
        "montecarlo": {
            "speedup": 0.99,
            "speedup_tier": "waived-dispatch-bound",
            "waiver_reason": "pool spin-up dominates 1,000 trials",
        },
        "bulk_ops": {"speedup_tier": "8-core"},  # cleared, not waived
    }
    checks = waiver_checks(payload)
    assert [c.path for c in checks] == [
        "montecarlo.speedup_tier",
        "speedup_tier",
    ]
    assert all(c.ok for c in checks)
    mc = checks[0]
    assert "waiver: waived-dispatch-bound" in mc.detail
    assert "pool spin-up dominates" in mc.detail
    top = checks[1]
    assert "waived-single-core" in top.detail


def test_waiver_checks_ignore_clean_payloads():
    from repro.obs.regress import waiver_checks

    assert waiver_checks({"speedup_tier": "forced:1.5"}) == []
    assert waiver_checks({"a": {"b": 1}, "c": [1, 2]}) == []
    assert waiver_checks("not-a-dict") == []


def test_waiver_checks_render_in_report_format():
    from repro.obs.regress import RegressionReport, waiver_checks

    report = RegressionReport(name="BENCH_x")
    report.checks.extend(
        waiver_checks({"speedup_tier": "waived-single-core"})
    )
    text = report.format()
    assert "BENCH_x: OK" in text
    assert "[ok  ] speedup_tier: waiver: waived-single-core" in text
