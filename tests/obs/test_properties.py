"""Property tests tying observability to ground truth.

Two invariants, fuzzed over random command programs:

1. **Lossless round trip** -- ``dump_trace_with_data`` -> ``parse_trace``
   -> ``replay_trace`` on a fresh device reproduces the data state
   bit-for-bit, including WRITE payloads (and zero payloads, which the
   old ``write_value or 0`` replay conflated with "missing").
2. **Counter fidelity** -- the profiler's streaming counters equal a
   from-scratch recount over the chip's raw command trace, and its
   busy/AAP/energy totals match the controller's own accounting.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.commands import Opcode
from repro.dram.geometry import small_test_geometry
from repro.dram.trace_io import dump_trace_with_data, parse_trace, replay_trace
from repro.energy.power_model import trace_energy_nj

N_BANKS = 2
N_SUBS = 2
DATA_ROWS = 8  # low rows are plain data in the 32-row tiny geometry
WORDS_PER_ROW = 8  # 64-byte rows

OPS = (
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NOT,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
)


def make_device() -> AmbitDevice:
    return AmbitDevice(
        geometry=small_test_geometry(
            rows=32, row_bytes=64, banks=N_BANKS, subarrays_per_bank=N_SUBS
        )
    )


@st.composite
def programs(draw):
    """A short random mix of bulk ops and traced raw writes."""
    n = draw(st.integers(min_value=1, max_value=6))
    actions = []
    for _ in range(n):
        bank = draw(st.integers(0, N_BANKS - 1))
        sub = draw(st.integers(0, N_SUBS - 1))
        if draw(st.booleans()):
            op = draw(st.sampled_from(OPS))
            rows = draw(
                st.lists(
                    st.integers(0, DATA_ROWS - 1),
                    min_size=3,
                    max_size=3,
                    unique=True,
                )
            )
            actions.append(("bbop", op, bank, sub, tuple(rows)))
        else:
            row = draw(st.integers(0, DATA_ROWS - 1))
            writes = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, WORDS_PER_ROW - 1),
                        st.integers(0, 2**64 - 1),
                    ),
                    min_size=1,
                    max_size=4,
                )
            )
            actions.append(("write", bank, sub, row, tuple(writes)))
    return actions


def run_program(device: AmbitDevice, actions) -> None:
    for action in actions:
        if action[0] == "bbop":
            _, op, bank, sub, (dst, src1, src2) = action
            device.bbop_row(
                op,
                RowLocation(bank, sub, dst),
                RowLocation(bank, sub, src1),
                RowLocation(bank, sub, src2) if op.arity >= 2 else None,
            )
        else:
            _, bank, sub, row, writes = action
            chip = device.chip
            chip.activate(bank, sub, row)
            for column, value in writes:
                chip.write_word(bank, column, value)
            chip.precharge(bank)


def data_state(device: AmbitDevice):
    """Every data row of every subarray, as comparable tuples."""
    return {
        (b, s, r): tuple(device.read_row(RowLocation(b, s, r)).tolist())
        for b in range(N_BANKS)
        for s in range(N_SUBS)
        for r in range(DATA_ROWS)
    }


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(actions=programs())
def test_dump_parse_replay_roundtrip(actions):
    original = make_device()
    start = len(original.chip.trace)
    run_program(original, actions)

    text = dump_trace_with_data(original.chip.trace.entries[start:])
    entries = parse_trace(text)

    replayed = make_device()
    replay_trace(replayed.chip, entries)

    assert data_state(replayed) == data_state(original)
    # and the replay's own trace dumps back to the identical text
    assert dump_trace_with_data(replayed.chip.trace.entries[start:]) == text


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(actions=programs())
def test_profiled_counters_match_raw_trace(actions):
    device = make_device()
    start = len(device.chip.trace)
    busy_before = device.controller.stats.busy_ns
    aaps_before = device.controller.stats.aap_count
    aps_before = device.controller.stats.ap_count

    with device.profile() as prof:
        run_program(device, actions)

    entries = device.chip.trace.entries[start:]
    counts = Counter(entry.command.opcode for entry in entries)
    c = prof.counters
    assert c.activates == counts[Opcode.ACTIVATE]
    assert c.precharges == counts[Opcode.PRECHARGE]
    assert c.writes == counts[Opcode.WRITE]
    assert c.reads == counts[Opcode.READ]
    assert c.commands == len(entries)
    assert c.tras == sum(1 for e in entries if e.wordlines_raised >= 3)
    assert c.double_row_activations == sum(
        1 for e in entries if e.wordlines_raised == 2
    )
    # energy: streaming per-command attribution == batch trace accounting
    assert c.energy_pj == pytest.approx(
        trace_energy_nj(entries, device.row_bytes) * 1000.0
    )
    # busy/AAP/AP: tracer agrees with the controller's own books
    assert c.busy_ns == pytest.approx(
        device.controller.stats.busy_ns - busy_before
    )
    assert c.aaps == device.controller.stats.aap_count - aaps_before
    assert c.aps == device.controller.stats.ap_count - aps_before
    assert sum(c.ops.values()) == sum(
        1 for action in actions if action[0] == "bbop"
    )


def test_zero_payload_survives_roundtrip():
    """Regression: ``entry.write_value or 0`` hid this case; an explicit
    0x0 payload must replay as a recorded zero, not a missing one."""
    original = make_device()
    chip = original.chip
    chip.activate(0, 0, 2)
    chip.write_word(0, 0, 0xFFFFFFFFFFFFFFFF)
    chip.precharge(0)
    chip.activate(0, 0, 2)
    chip.write_word(0, 0, 0)
    chip.precharge(0)

    text = dump_trace_with_data(chip.trace.entries)
    assert "WR 0 0 0x0" in text or "WR 0 0 0" in text

    replayed = make_device()
    replay_trace(replayed.chip, parse_trace(text))
    assert data_state(replayed) == data_state(original)
    word = replayed.read_row(RowLocation(0, 0, 2))[0]
    assert int(word) == 0
