"""The metrics registry: families, exposition, threading through the stack."""

import json
import math
import urllib.request

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.core.microprograms import BulkOp
from repro.dram.geometry import small_test_geometry
from repro.errors import ConfigError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    format_top,
)

GEO = small_test_geometry(rows=32, row_bytes=64, banks=2, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row


def _run_ops(device, op=BulkOp.AND, count=3):
    rng = np.random.default_rng(3)
    from repro.dram.chip import RowLocation

    for i in range(count):
        dst = RowLocation(i % GEO.banks, 0, 0)
        a = RowLocation(i % GEO.banks, 0, 1)
        b = RowLocation(i % GEO.banks, 0, 2)
        device.write_row(a, rng.integers(0, 2**63, size=WORDS, dtype=np.uint64))
        device.write_row(b, rng.integers(0, 2**63, size=WORDS, dtype=np.uint64))
        device.bbop_row(op, dst, a, b if op.arity >= 2 else None)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_counter_gauge_basics():
    registry = MetricsRegistry()
    c = registry.counter("c_total", "a counter")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ConfigError):
        c.inc(-1)
    g = registry.gauge("g", "a gauge")
    g.set(7)
    g.dec(3)
    assert g.value == 4.0


def test_labeled_family_children_and_type_conflicts():
    registry = MetricsRegistry()
    fam = registry.counter("jobs_total", "per-queue jobs", labels=("queue",))
    fam.labels(queue="a").inc()
    fam.labels(queue="a").inc()
    fam.labels(queue="b").inc(5)
    assert fam.children[("a",)].value == 2
    assert fam.children[("b",)].value == 5
    with pytest.raises(ConfigError):
        fam.inc()  # labeled family has no scalar proxy
    with pytest.raises(ConfigError):
        fam.labels(wrong="x")
    # Same name, same shape -> the same family object.
    assert registry.counter("jobs_total", labels=("queue",)) is fam
    with pytest.raises(ConfigError):
        registry.gauge("jobs_total")  # type conflict


def test_histogram_quantiles_and_reset():
    h = Histogram(bounds=(10.0, 100.0, 1000.0))
    for v in (5, 5, 50, 50, 50, 500):
        h.observe(v)
    assert h.count == 6 and h.sum == 660
    assert 0 < h.quantile(0.5) <= 100.0
    # All mass below 10 -> p99 interpolates inside the first bucket.
    h2 = Histogram(bounds=(10.0, 100.0))
    assert math.isnan(h2.quantile(0.5))
    h2.observe(4.0)
    assert h2.quantile(0.99) <= 10.0
    # Overflow bucket reports its lower bound.
    h3 = Histogram(bounds=(10.0,))
    h3.observe(99.0)
    assert h3.quantile(0.99) == 10.0
    with pytest.raises(ConfigError):
        Histogram(bounds=(5.0, 5.0))
    with pytest.raises(ConfigError):
        h.quantile(0.0)


def test_registry_reset_preserves_registrations():
    registry = MetricsRegistry()
    c = registry.counter("x_total")
    hist = registry.histogram("h_ns")
    c.inc(4)
    hist.observe(123.0)
    registry.reset()
    assert c.value == 0
    only = registry.get("h_ns").children[()]
    assert only.count == 0 and only.sum == 0.0
    assert only.bucket_counts == [0] * (len(DEFAULT_LATENCY_BUCKETS_NS) + 1)


def test_collectors_refresh_on_exposition():
    registry = MetricsRegistry()
    g = registry.gauge("sampled")
    state = {"v": 1}
    registry.register_collector(lambda: g.set(state["v"]))
    state["v"] = 42
    assert "sampled 42" in registry.render_prometheus()


# ----------------------------------------------------------------------
# Exposition formats
# ----------------------------------------------------------------------
def test_prometheus_rendering_shape():
    registry = MetricsRegistry()
    registry.counter("ops_total", "ops done", labels=("op",)).labels(
        op="and"
    ).inc(3)
    h = registry.histogram("lat_ns", "latency", buckets=(10.0, 100.0))
    h.observe(50.0)
    text = registry.render_prometheus()
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{op="and"} 3' in text
    assert 'lat_ns_bucket{le="10"} 0' in text
    assert 'lat_ns_bucket{le="100"} 1' in text
    assert 'lat_ns_bucket{le="+Inf"} 1' in text
    assert "lat_ns_sum 50" in text
    assert "lat_ns_count 1" in text


def test_snapshot_and_jsonl(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a_total").inc(2)
    registry.histogram("h_ns", buckets=(10.0,)).observe(3.0)
    snap = registry.snapshot()
    assert snap["a_total"]["samples"][0]["value"] == 2
    assert snap["h_ns"]["samples"][0]["count"] == 1
    assert snap["h_ns"]["samples"][0]["p50"] <= 10.0
    path = tmp_path / "metrics.jsonl"
    lines = registry.write_jsonl(str(path))
    records = [json.loads(l) for l in path.read_text().splitlines()]
    assert len(records) == lines == 2
    assert {r["metric"] for r in records} == {"a_total", "h_ns"}


def test_metrics_server_serves_live_values():
    registry = MetricsRegistry()
    c = registry.counter("live_total")
    with MetricsServer(registry, port=0) as server:
        c.inc(1)
        body = urllib.request.urlopen(server.url).read().decode()
        assert "live_total 1" in body
        c.inc(1)
        body = urllib.request.urlopen(server.url).read().decode()
        assert "live_total 2" in body
        js = urllib.request.urlopen(
            server.url.replace("/metrics", "/metrics.json")
        ).read()
        assert json.loads(js)["live_total"]["samples"][0]["value"] == 2


def test_metrics_server_negotiates_openmetrics_exemplars():
    """Exemplar syntax is only legal in OpenMetrics: a classic
    text-format scrape carrying a trailing '# {...}' would be rejected
    by Prometheus wholesale.  The server must keep exemplars out of the
    default exposition and serve them only to scrapers that ask for
    application/openmetrics-text."""
    registry = MetricsRegistry()
    registry.histogram("neg_lat_ns", buckets=(10.0,)).observe(
        5.0, exemplar="t-negotiated"
    )
    with MetricsServer(registry, port=0) as server:
        plain = urllib.request.urlopen(server.url)
        assert plain.headers["Content-Type"].startswith("text/plain")
        body = plain.read().decode()
        assert "neg_lat_ns_bucket" in body
        assert "trace_id" not in body
        assert "# EOF" not in body

        request = urllib.request.Request(
            server.url,
            headers={"Accept": "application/openmetrics-text; version=1.0.0"},
        )
        om = urllib.request.urlopen(request)
        assert om.headers["Content-Type"].startswith(
            "application/openmetrics-text"
        )
        om_body = om.read().decode()
        assert 'trace_id="t-negotiated"' in om_body
        assert om_body.endswith("# EOF\n")


# ----------------------------------------------------------------------
# Threading through the execution stack
# ----------------------------------------------------------------------
def test_device_threads_metrics_through_controller_and_cache():
    device = AmbitDevice(geometry=GEO)
    _run_ops(device, BulkOp.AND, count=4)
    registry = device.metrics
    ops = registry.get("ambit_ops_total")
    assert ops.children[("and",)].value == 4
    latency = registry.get("ambit_op_latency_ns")
    child = latency.children[("and",)]
    assert child.count == 4 and child.sum > 0
    hits = registry.get("ambit_plan_cache_hits_total")
    misses = registry.get("ambit_plan_cache_misses_total")
    assert misses.value >= 1 and hits.value + misses.value == 4
    assert registry.get("ambit_plan_cache_plans").value >= 1
    assert registry.get("ambit_busy_ns_total").value == device.busy_ns


def test_batch_engine_and_allocator_metrics():
    device = AmbitDevice(geometry=GEO)
    driver = AmbitDriver(device)
    handles = [driver.allocate(device.row_bits) for _ in range(3)]
    from repro.dram.chip import RowLocation

    dst = [RowLocation(0, 0, 0), RowLocation(1, 0, 0)]
    src1 = [RowLocation(0, 0, 1), RowLocation(1, 0, 1)]
    src2 = [RowLocation(0, 0, 2), RowLocation(1, 0, 2)]
    rng = np.random.default_rng(5)
    for loc in src1 + src2:
        device.write_row(
            loc, rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)
        )
    device.engine.run_rows(BulkOp.XOR, dst, src1, src2)
    registry = device.metrics
    assert registry.get("ambit_batches_total").value == 1
    rows = registry.get("ambit_batch_rows_total")
    assert sum(c.value for c in rows.children.values()) == 2
    assert registry.get("ambit_allocator_rows_in_use").value == 3
    assert registry.get("ambit_allocator_high_water_rows").value == 3
    for handle in handles:
        driver.free(handle)
    assert registry.get("ambit_allocator_rows_in_use").value == 0
    assert registry.get("ambit_allocator_high_water_rows").value == 3


def test_device_reset_stats_resets_metrics():
    device = AmbitDevice(geometry=GEO)
    _run_ops(device, BulkOp.OR, count=2)
    assert device.metrics.get("ambit_ops_total").children[("or",)].value == 2
    device.reset_stats()
    assert device.metrics.get("ambit_ops_total").children[("or",)].value == 0


def test_format_top_renders_sections():
    device = AmbitDevice(geometry=GEO)
    _run_ops(device, BulkOp.NOT, count=2)
    text = format_top(device.metrics)
    assert "not" in text
    assert "plan cache:" in text
    empty = format_top(MetricsRegistry())
    assert "no metrics" in empty
