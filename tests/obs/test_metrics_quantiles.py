"""Property tests for histogram quantile tails.

The serving layer's SLO gate (``repro loadgen``) and the ``repro top``
views both trust ``Histogram.quantile`` to summarize latency tails
from fixed buckets.  These tests fuzz that trust over adversarial
streams -- values landing exactly on bucket boundaries, all mass in
one bucket, overflow-only mass, single observations -- and over
arbitrary bucket layouts:

1. **Tail monotonicity** -- p50 <= p95 <= p99 (and more generally the
   quantile function is non-decreasing in ``q``), never NaN once one
   observation exists.
2. **Bucket consistency** -- ``count``/``sum``/``bucket_counts`` agree
   with a from-scratch recount of the raw stream, and every quantile
   estimate lies inside the bucket that actually contains its rank:
   the same bucket a nearest-rank quantile over the raw samples hits.
3. **Snapshot round trip** -- percentiles survive
   ``snapshot -> JSON (adversarially key-sorted) -> registry`` intact,
   which is exactly the path ``repro top --url`` renders from.  A
   ``sort_keys`` serializer reorders "1024" before "16"; the rebuild
   must not inherit that string ordering.
"""

import json
import math
from bisect import bisect_left

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    EXEMPLAR_WINDOW,
    Histogram,
    MetricsRegistry,
    registry_from_snapshot,
)

# Wide magnitude range, including sub-one values and the nanosecond
# scale the latency histograms actually see.
_VALUES = st.floats(
    min_value=0.0,
    max_value=1e12,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def bounds_and_stream(draw):
    """Arbitrary ascending bounds plus a stream biased to be nasty.

    Roughly half the observations are drawn *from the bounds
    themselves* (inclusive upper edges are the classic off-by-one
    site); the rest are arbitrary, including values above the last
    bound so the overflow bucket is exercised.
    """
    bounds = sorted(
        draw(
            st.sets(
                st.floats(
                    min_value=1e-3,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=1,
                max_size=12,
            )
        )
    )
    edge = st.sampled_from(bounds)
    stream = draw(
        st.lists(st.one_of(edge, _VALUES), min_size=1, max_size=200)
    )
    return bounds, stream


def _nearest_rank(samples, q):
    """Ground-truth quantile: the q-th nearest-rank raw sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _bucket_index(bounds, value):
    return bisect_left(bounds, value)


@given(bounds_and_stream())
@settings(max_examples=200, deadline=None)
def test_tails_monotone(case):
    bounds, stream = case
    hist = Histogram(bounds)
    for value in stream:
        hist.observe(value)

    p = hist.percentiles()
    assert not math.isnan(p["p50"])
    assert p["p50"] <= p["p95"] <= p["p99"]

    quantiles = [hist.quantile(q) for q in (0.01, 0.1, 0.25, 0.5,
                                            0.75, 0.9, 0.95, 0.99, 1.0)]
    assert quantiles == sorted(quantiles)


@given(bounds_and_stream())
@settings(max_examples=200, deadline=None)
def test_buckets_consistent_with_raw_stream(case):
    bounds, stream = case
    hist = Histogram(bounds)
    for value in stream:
        hist.observe(value)

    recount = [0] * (len(bounds) + 1)
    for value in stream:
        recount[_bucket_index(bounds, value)] += 1
    assert hist.bucket_counts == recount
    assert hist.count == len(stream)
    assert math.isclose(
        hist.sum, math.fsum(stream), rel_tol=1e-9, abs_tol=1e-9
    )


@given(bounds_and_stream(), st.sampled_from((0.5, 0.95, 0.99)))
@settings(max_examples=200, deadline=None)
def test_quantile_lands_in_true_rank_bucket(case, q):
    """The estimate and the raw nearest-rank sample share a bucket.

    The interpolation may smear *within* a bucket but must never
    report a value from the wrong one -- that is the whole contract
    of a fixed-bucket tail summary.
    """
    bounds, stream = case
    hist = Histogram(bounds)
    for value in stream:
        hist.observe(value)

    truth = _nearest_rank(stream, q)
    true_bucket = _bucket_index(bounds, truth)
    estimate = hist.quantile(q)

    lower = 0.0 if true_bucket == 0 else bounds[true_bucket - 1]
    if true_bucket == len(bounds):
        # Overflow bucket: the estimate collapses to its lower bound.
        assert estimate == bounds[-1]
    else:
        assert lower <= estimate <= bounds[true_bucket]


@given(bounds_and_stream())
@settings(max_examples=100, deadline=None)
def test_percentiles_survive_snapshot_round_trip(case):
    bounds, stream = case
    registry = MetricsRegistry()
    family = registry.histogram(
        "trip_latency_ns", "round-trip fuzz", labels=("cmd",),
        buckets=bounds,
    )
    child = family.labels(cmd="op")
    for value in stream:
        child.observe(value)

    # An adversarial transport: sort_keys reorders bucket keys
    # lexicographically ("1024" < "16"), like some JSON emitters do.
    wire = json.loads(json.dumps(registry.snapshot(), sort_keys=True))
    rebuilt = registry_from_snapshot(wire)
    twin = rebuilt.get("trip_latency_ns").labels(cmd="op")

    assert twin.bucket_counts == child.bucket_counts
    assert twin.count == child.count
    assert math.isclose(twin.sum, child.sum, rel_tol=1e-9, abs_tol=1e-9)
    for q in (0.5, 0.95, 0.99):
        a, b = child.quantile(q), twin.quantile(q)
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


# ----------------------------------------------------------------------
# Degenerate shapes: the cases fuzzing rarely pins down exactly.
# ----------------------------------------------------------------------
def test_empty_histogram_reports_nan_everywhere():
    hist = Histogram([1.0, 10.0, 100.0])
    assert math.isnan(hist.quantile(0.5))
    assert math.isnan(hist.quantile(1.0))
    assert all(math.isnan(v) for v in hist.percentiles().values())
    assert hist.max_exemplar() is None


def test_single_observation_dominates_every_quantile():
    hist = Histogram([1.0, 10.0, 100.0])
    hist.observe(7.0)
    for q in (0.01, 0.5, 0.99, 1.0):
        estimate = hist.quantile(q)
        # One sample in (1, 10]: every quantile stays in its bucket.
        assert 1.0 <= estimate <= 10.0
    p = hist.percentiles()
    # Interpolation smears within the bucket, but stays monotone.
    assert p["p50"] <= p["p95"] <= p["p99"] <= 10.0


def test_quantile_interpolation_clamped_to_bucket_bound():
    """Regression: with the whole mass in one bucket, p50's
    interpolated value once exceeded the bucket bound by a float ulp,
    landing *above* a p95 served from the overflow bucket's lower
    bound.  The estimate must never leave its bucket."""
    bound = 914036398.1535898
    hist = Histogram([bound])
    for _ in range(19):
        hist.observe(bound)
    hist.observe(bound * 2)        # one overflow observation
    assert hist.quantile(0.5) <= bound
    assert hist.quantile(0.5) <= hist.quantile(0.95) <= hist.quantile(0.99)


# ----------------------------------------------------------------------
# Exemplars: trace ids riding on bucket counts.
# ----------------------------------------------------------------------
def test_exemplar_keeps_largest_observation_per_bucket():
    hist = Histogram([10.0, 100.0])
    hist.observe(5.0, exemplar="t-small")
    hist.observe(7.0, exemplar="t-bigger")
    hist.observe(6.0, exemplar="t-late-but-smaller")
    hist.observe(50.0)                       # untagged: never retained
    hist.observe(500.0, exemplar="t-overflow")
    assert hist.exemplars[0] == (7.0, "t-bigger")
    assert hist.exemplars[1] is None
    assert hist.exemplars[2] == (500.0, "t-overflow")
    assert hist.max_exemplar() == (500.0, "t-overflow")


def test_reset_clears_exemplars():
    registry = MetricsRegistry()
    family = registry.histogram(
        "reset_latency_ns", "reset fuzz", labels=("cmd",),
        buckets=[10.0],
    )
    child = family.labels(cmd="op")
    child.observe(5.0, exemplar="t-gone")
    registry.reset()
    assert child.exemplars == [None, None]
    assert child.max_exemplar() is None
    child.observe(3.0, exemplar="t-fresh")
    assert child.max_exemplar() == (3.0, "t-fresh")


def test_exemplars_survive_snapshot_round_trip():
    registry = MetricsRegistry()
    family = registry.histogram(
        "trip_latency_ns", "round-trip", labels=("cmd",),
        buckets=[16.0, 1024.0],
    )
    child = family.labels(cmd="op")
    child.observe(8.0, exemplar="t-fast")
    child.observe(4096.0, exemplar="t-slow")

    wire = json.loads(json.dumps(registry.snapshot(), sort_keys=True))
    rebuilt = registry_from_snapshot(wire)
    twin = rebuilt.get("trip_latency_ns").labels(cmd="op")
    assert twin.exemplars == child.exemplars
    assert twin.max_exemplar() == (4096.0, "t-slow")
    # The OpenMetrics exposition carries the trace id; the classic
    # Prometheus text format must not (exemplar syntax is a parse error
    # there and would break real scrapes).
    text = rebuilt.render_prometheus(openmetrics=True)
    assert 'trace_id="t-slow"' in text
    assert text.endswith("# EOF\n")
    classic = rebuilt.render_prometheus()
    assert "trace_id" not in classic
    assert "# EOF" not in classic


def test_exemplar_ages_out_after_window_of_tagged_observations():
    """A stale record-holder must yield to fresh traces: the span store
    is a bounded ring, so an exemplar older than EXEMPLAR_WINDOW tagged
    observations would advertise a trace id that no longer resolves."""
    hist = Histogram([10.0])
    hist.observe(9.0, exemplar="t-record")
    # Smaller observations inside the window never displace the record.
    for i in range(EXEMPLAR_WINDOW):
        hist.observe(1.0, exemplar=f"t-young-{i}")
    assert hist.exemplars[0] == (9.0, "t-record")
    # The next tagged observation finds the record older than the
    # window; even a smaller value takes over with a resolvable id.
    hist.observe(2.0, exemplar="t-fresh")
    assert hist.exemplars[0] == (2.0, "t-fresh")
    assert hist.max_exemplar() == (2.0, "t-fresh")
