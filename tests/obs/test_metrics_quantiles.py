"""Property tests for histogram quantile tails.

The serving layer's SLO gate (``repro loadgen``) and the ``repro top``
views both trust ``Histogram.quantile`` to summarize latency tails
from fixed buckets.  These tests fuzz that trust over adversarial
streams -- values landing exactly on bucket boundaries, all mass in
one bucket, overflow-only mass, single observations -- and over
arbitrary bucket layouts:

1. **Tail monotonicity** -- p50 <= p95 <= p99 (and more generally the
   quantile function is non-decreasing in ``q``), never NaN once one
   observation exists.
2. **Bucket consistency** -- ``count``/``sum``/``bucket_counts`` agree
   with a from-scratch recount of the raw stream, and every quantile
   estimate lies inside the bucket that actually contains its rank:
   the same bucket a nearest-rank quantile over the raw samples hits.
3. **Snapshot round trip** -- percentiles survive
   ``snapshot -> JSON (adversarially key-sorted) -> registry`` intact,
   which is exactly the path ``repro top --url`` renders from.  A
   ``sort_keys`` serializer reorders "1024" before "16"; the rebuild
   must not inherit that string ordering.
"""

import json
import math
from bisect import bisect_left

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    registry_from_snapshot,
)

# Wide magnitude range, including sub-one values and the nanosecond
# scale the latency histograms actually see.
_VALUES = st.floats(
    min_value=0.0,
    max_value=1e12,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def bounds_and_stream(draw):
    """Arbitrary ascending bounds plus a stream biased to be nasty.

    Roughly half the observations are drawn *from the bounds
    themselves* (inclusive upper edges are the classic off-by-one
    site); the rest are arbitrary, including values above the last
    bound so the overflow bucket is exercised.
    """
    bounds = sorted(
        draw(
            st.sets(
                st.floats(
                    min_value=1e-3,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=1,
                max_size=12,
            )
        )
    )
    edge = st.sampled_from(bounds)
    stream = draw(
        st.lists(st.one_of(edge, _VALUES), min_size=1, max_size=200)
    )
    return bounds, stream


def _nearest_rank(samples, q):
    """Ground-truth quantile: the q-th nearest-rank raw sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _bucket_index(bounds, value):
    return bisect_left(bounds, value)


@given(bounds_and_stream())
@settings(max_examples=200, deadline=None)
def test_tails_monotone(case):
    bounds, stream = case
    hist = Histogram(bounds)
    for value in stream:
        hist.observe(value)

    p = hist.percentiles()
    assert not math.isnan(p["p50"])
    assert p["p50"] <= p["p95"] <= p["p99"]

    quantiles = [hist.quantile(q) for q in (0.01, 0.1, 0.25, 0.5,
                                            0.75, 0.9, 0.95, 0.99, 1.0)]
    assert quantiles == sorted(quantiles)


@given(bounds_and_stream())
@settings(max_examples=200, deadline=None)
def test_buckets_consistent_with_raw_stream(case):
    bounds, stream = case
    hist = Histogram(bounds)
    for value in stream:
        hist.observe(value)

    recount = [0] * (len(bounds) + 1)
    for value in stream:
        recount[_bucket_index(bounds, value)] += 1
    assert hist.bucket_counts == recount
    assert hist.count == len(stream)
    assert math.isclose(
        hist.sum, math.fsum(stream), rel_tol=1e-9, abs_tol=1e-9
    )


@given(bounds_and_stream(), st.sampled_from((0.5, 0.95, 0.99)))
@settings(max_examples=200, deadline=None)
def test_quantile_lands_in_true_rank_bucket(case, q):
    """The estimate and the raw nearest-rank sample share a bucket.

    The interpolation may smear *within* a bucket but must never
    report a value from the wrong one -- that is the whole contract
    of a fixed-bucket tail summary.
    """
    bounds, stream = case
    hist = Histogram(bounds)
    for value in stream:
        hist.observe(value)

    truth = _nearest_rank(stream, q)
    true_bucket = _bucket_index(bounds, truth)
    estimate = hist.quantile(q)

    lower = 0.0 if true_bucket == 0 else bounds[true_bucket - 1]
    if true_bucket == len(bounds):
        # Overflow bucket: the estimate collapses to its lower bound.
        assert estimate == bounds[-1]
    else:
        assert lower <= estimate <= bounds[true_bucket]


@given(bounds_and_stream())
@settings(max_examples=100, deadline=None)
def test_percentiles_survive_snapshot_round_trip(case):
    bounds, stream = case
    registry = MetricsRegistry()
    family = registry.histogram(
        "trip_latency_ns", "round-trip fuzz", labels=("cmd",),
        buckets=bounds,
    )
    child = family.labels(cmd="op")
    for value in stream:
        child.observe(value)

    # An adversarial transport: sort_keys reorders bucket keys
    # lexicographically ("1024" < "16"), like some JSON emitters do.
    wire = json.loads(json.dumps(registry.snapshot(), sort_keys=True))
    rebuilt = registry_from_snapshot(wire)
    twin = rebuilt.get("trip_latency_ns").labels(cmd="op")

    assert twin.bucket_counts == child.bucket_counts
    assert twin.count == child.count
    assert math.isclose(twin.sum, child.sum, rel_tol=1e-9, abs_tol=1e-9)
    for q in (0.5, 0.95, 0.99):
        a, b = child.quantile(q), twin.quantile(q)
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
